// Package server exposes a mipp.Engine over HTTP: the handler behind the
// mippd daemon. Every endpoint speaks the versioned JSON DTOs of mipp/api,
// and mipp/client is its symmetric consumer — a request answered through
// this handler carries exactly the bytes the in-process engine would have
// produced.
//
// Routes:
//
//	POST   /v1/profiles         register a profile (inline envelope or built-in workload)
//	GET    /v1/profiles/{name}  one profile's metadata (digest, size, residency)
//	DELETE /v1/profiles/{name}  drop a profile (and its stored object)
//	GET    /v1/workloads        list registered profiles
//	POST   /v1/predict          one (workload, config) prediction
//	POST   /v1/sweep            one workload × many configs, per-config errors
//	                            (?stream=1: NDJSON header/item/trailer frames)
//	POST   /v1/evaluate         workloads × configs batch, per-item errors
//	POST   /v1/pareto           sweep + Pareto frontier / power cap / ED²P decisions
//	POST   /v1/search           submit an async design-space search job
//	GET    /v1/search/{id}      poll a search job (progress, then the report)
//	GET    /v1/search/{id}/events  SSE stream of progress/front/terminal events
//	DELETE /v1/search/{id}      cancel a search job
//	GET    /v1/fidelity         model-vs-simulator error report (?wait=1 flushes the sampler)
//	GET    /v1/store/index             replication: catalog + generation (ETag/304)
//	GET    /v1/store/objects/{digest}  replication: one canonical envelope by digest
//	PUT    /v1/store/objects/{digest}  replication: upload an envelope (?name=)
//	DELETE /v1/store/objects/{digest}  replication: drop every name referencing digest
//	GET    /healthz             liveness + registry, cache, search-job and store counters
//	GET    /metrics             Prometheus text exposition of every instrument
//
// Every response echoes an X-Request-Id header (the caller's, or a fresh
// one), and every request log line carries it as rid=, so a prediction can
// be traced through mipp-router to the replica that answered it. With a
// logger configured the middleware also opens a trace span per request
// (adopting the caller's X-Span-Id as the remote parent), under which the
// engine's store-load, compile, and search-generation spans nest. The
// /v1/store endpoints exist only when the engine's backing store supports
// content-addressed replication (mipp.ObjectStore); without one they
// answer 404.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"time"

	"mipp"
	"mipp/api"
	"mipp/obs"
)

// DefaultMaxBodyBytes bounds request bodies (profiles for long traces run
// to tens of MB; design-space sweeps with inline configs are far smaller).
const DefaultMaxBodyBytes = 256 << 20

// Server is the HTTP front end of an Engine. It is an http.Handler; wire it
// into any mux or serve it directly.
type Server struct {
	engine   *mipp.Engine
	logger   *log.Logger
	maxBody  int64
	started  time.Time
	handlers http.Handler
	// objects is the engine's backing store when it supports
	// content-addressed replication; nil otherwise (the /v1/store
	// endpoints then answer 404).
	objects mipp.ObjectStore
	// metrics is the registry /metrics serves; per-route HTTP instruments,
	// the engine's instruments, and the error-sentinel counters register on
	// it at construction.
	metrics *obs.Registry
	// errors counts error responses by sentinel class, pre-registered so
	// every class exposes a zero-valued series from boot.
	errors map[string]*obs.Counter
}

// Option customizes a Server.
type Option func(*Server)

// WithLogger routes request logs (method, path, status, duration) to l; nil
// disables request logging.
func WithLogger(l *log.Logger) Option {
	return func(s *Server) { s.logger = l }
}

// WithMaxBodyBytes caps accepted request bodies.
func WithMaxBodyBytes(n int64) Option {
	return func(s *Server) { s.maxBody = n }
}

// WithMetricsRegistry substitutes the registry /metrics serves (the default
// is a fresh registry chained to obs.Default(), so the kernel's process-wide
// counters are included). Pass one registry to several servers only if their
// instruments cannot collide.
func WithMetricsRegistry(reg *obs.Registry) Option {
	return func(s *Server) { s.metrics = reg }
}

// New wraps engine in the HTTP service surface.
func New(engine *mipp.Engine, opts ...Option) *Server {
	s := &Server{
		engine:  engine,
		maxBody: DefaultMaxBodyBytes,
		started: time.Now(),
	}
	for _, o := range opts {
		o(s)
	}
	s.objects, _ = engine.ProfileStore().(mipp.ObjectStore)
	if s.metrics == nil {
		s.metrics = obs.NewRegistry(obs.WithBase(obs.Default()))
	}
	s.engine.MetricsInto(s.metrics)
	s.errors = make(map[string]*obs.Counter, len(errorSentinels))
	for _, sentinel := range errorSentinels {
		//mipp:allow obshygiene pre-registering one series per sentinel at startup
		s.errors[sentinel] = s.metrics.Counter("mipp_http_errors_total",
			"Error responses, by sentinel class.", obs.Label{Key: "sentinel", Value: sentinel})
	}
	mux := http.NewServeMux()
	// route registers a handler wrapped in its per-route HTTP instruments.
	// The mux pattern doubles as the route label — instrumentation must
	// happen here, at registration, because the matched pattern is not
	// recoverable from an outer middleware.
	route := func(pattern string, h http.Handler) {
		mux.Handle(pattern, obs.NewHTTPStats(s.metrics, pattern).Wrap(h))
	}
	routeFunc := func(pattern string, h http.HandlerFunc) { route(pattern, h) }
	routeFunc("POST /v1/profiles", handleJSON(s, s.engine.RegisterProfile))
	routeFunc("GET /v1/profiles/{name}", s.handleProfileGet)
	routeFunc("DELETE /v1/profiles/{name}", s.handleProfileDelete)
	routeFunc("POST /v1/predict", handleJSON(s, s.engine.Predict))
	routeFunc("POST /v1/sweep", s.handleSweep)
	routeFunc("POST /v1/evaluate", handleJSON(s, s.engine.Evaluate))
	routeFunc("POST /v1/pareto", handleJSON(s, s.engine.Pareto))
	routeFunc("POST /v1/search", s.handleSearchSubmit)
	routeFunc("GET /v1/search/{id}", s.handleSearchGet)
	routeFunc("GET /v1/search/{id}/events", s.handleSearchEvents)
	routeFunc("DELETE /v1/search/{id}", s.handleSearchCancel)
	routeFunc("GET /v1/workloads", s.handleWorkloads)
	routeFunc("GET /v1/fidelity", s.handleFidelity)
	routeFunc("GET /v1/store/index", s.handleStoreIndex)
	routeFunc("GET /v1/store/objects/{digest}", s.handleStoreObjectGet)
	routeFunc("PUT /v1/store/objects/{digest}", s.handleStoreObjectPut)
	routeFunc("DELETE /v1/store/objects/{digest}", s.handleStoreObjectDelete)
	routeFunc("GET /healthz", s.handleHealthz)
	// The scrape endpoint itself is not instrumented: scrapes should not
	// move the series they read.
	mux.Handle("GET /metrics", s.metrics.Handler())
	s.handlers = s.instrumented(mux)
	return s
}

// MetricsRegistry returns the registry /metrics serves, so a daemon can
// expose the same instruments on a separate debug listener
// (obs.DebugHandler) next to pprof.
func (s *Server) MetricsRegistry() *obs.Registry { return s.metrics }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handlers.ServeHTTP(w, r)
}

// statusWriter records the status code for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so the streaming handlers (SSE,
// NDJSON sweep) can flush through the logging wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrumented is the outermost middleware: it assigns (or adopts) the
// request ID, echoes it on the response, threads it through the request
// context for the handlers' own log lines, opens the request's root trace
// span (adopting an X-Span-Id header as the remote parent, so the span
// hangs under the caller's), and writes the request log. Per-route metrics
// live inside the mux (see New) because the route pattern is not visible
// out here.
func (s *Server) instrumented(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := r.Header.Get(api.RequestIDHeader)
		if rid == "" {
			rid = api.NewRequestID()
		}
		w.Header().Set(api.RequestIDHeader, rid)
		ctx := api.ContextWithRequestID(r.Context(), rid)
		if remote := r.Header.Get(api.SpanIDHeader); remote != "" {
			ctx = obs.ContextWithRemoteParent(ctx, remote)
		}
		ctx, span := obs.StartSpan(ctx, s.logger, rid, "http "+r.Method+" "+r.URL.Path)
		r = r.WithContext(ctx)
		if s.logger == nil {
			next.ServeHTTP(w, r)
			return
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		t0 := time.Now()
		next.ServeHTTP(sw, r)
		span.Finish()
		s.logger.Printf("%s %s %d %s rid=%s", r.Method, r.URL.Path, sw.status, time.Since(t0).Round(time.Microsecond), rid)
	})
}

// decodeRequest reads one JSON request DTO with unknown-field and
// trailing-data rejection, writing the error response itself on failure.
func decodeRequest[Req any](s *Server, w http.ResponseWriter, r *http.Request) (*Req, bool) {
	req := new(Req)
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(req); err != nil {
		s.writeError(w, decodeStatus(err), fmt.Errorf("decode request: %w", err))
		return nil, false
	}
	if err := drainTrailing(dec); err != nil {
		s.writeError(w, decodeStatus(err), err)
		return nil, false
	}
	return req, true
}

// handleJSON adapts one engine method to HTTP: decode the request DTO with
// unknown-field rejection, call the engine with the request context, map
// errors onto statuses, and encode the response DTO.
func handleJSON[Req any, Resp any](s *Server, call func(ctx context.Context, req *Req) (*Resp, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		req, ok := decodeRequest[Req](s, w, r)
		if !ok {
			return
		}
		resp, err := call(r.Context(), req)
		if err != nil {
			s.writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	}
}

// logf logs through the server's logger when one is configured.
func (s *Server) logf(format string, args ...any) {
	if s.logger != nil {
		s.logger.Printf(format, args...)
	}
}

// handleSearchSubmit admits an async search job. The assigned job ID goes
// to the request log so operators can line later polls up with the submit.
func (s *Server) handleSearchSubmit(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeRequest[api.SearchRequest](s, w, r)
	if !ok {
		return
	}
	resp, err := s.engine.SubmitSearch(r.Context(), req)
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	s.logf("search job %s: submitted workload=%s strategy=%s space=%d budget=%d rid=%s",
		resp.Job.ID, resp.Job.Workload, resp.Job.Strategy, resp.Job.SpaceSize, req.Budget,
		api.RequestIDFromContext(r.Context()))
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSearchGet(w http.ResponseWriter, r *http.Request) {
	resp, err := s.engine.SearchJob(r.Context(), r.PathValue("id"))
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSearchCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	resp, err := s.engine.CancelSearch(r.Context(), id)
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	s.logf("search job %s: cancel requested, state=%s after %d evaluations rid=%s",
		id, resp.Job.State, resp.Job.Evaluations, api.RequestIDFromContext(r.Context()))
	writeJSON(w, http.StatusOK, resp)
}

// decodeStatus distinguishes "shrink the upload" (413) from "fix the JSON"
// (400) for body-decoding failures.
func decodeStatus(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// drainTrailing rejects bodies with content after the first JSON value,
// passing body-limit errors through for the 413 mapping.
func drainTrailing(dec *json.Decoder) error {
	_, err := dec.Token()
	switch {
	case errors.Is(err, io.EOF):
		return nil
	case err == nil:
		return fmt.Errorf("trailing data after request body")
	default:
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return err
		}
		return fmt.Errorf("trailing data after request body")
	}
}

// handleProfileGet serves one profile's metadata; unknown names map to 404
// through ErrUnknownWorkload like every evaluation path.
func (s *Server) handleProfileGet(w http.ResponseWriter, r *http.Request) {
	resp, err := s.engine.ProfileInfo(r.Context(), r.PathValue("name"))
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleProfileDelete drops a profile — from memory and from the daemon's
// store, when it runs with one.
func (s *Server) handleProfileDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	resp, err := s.engine.DeleteProfile(r.Context(), name)
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	s.logf("profile %q: deleted rid=%s", name, api.RequestIDFromContext(r.Context()))
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	resp, err := s.engine.Workloads(r.Context())
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleFidelity serves the fidelity observatory's report. ?wait=1 flushes
// the sampler queue first (bounded by the request context), so a test or CI
// step that just served a batch reads a report covering it. On an engine
// without fidelity sampling it answers enabled=false rather than 404 — the
// route's existence should not depend on daemon flags.
func (s *Server) handleFidelity(w http.ResponseWriter, r *http.Request) {
	wait := r.URL.Query().Get("wait") == "1"
	rep, err := s.engine.FidelityReport(r.Context(), wait)
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, api.FidelityResponse{
		SchemaVersion: api.SchemaVersion,
		Enabled:       s.engine.FidelityEnabled(),
		Report:        rep,
	})
}

// healthResponse is the /healthz body: liveness plus the engine counters a
// load balancer or operator wants at a glance.
type healthResponse struct {
	SchemaVersion       int    `json:"schema_version"`
	Status              string `json:"status"`
	UptimeSeconds       int64  `json:"uptime_seconds"`
	Workloads           int    `json:"workloads"`
	CachedPredictors    int    `json:"cached_predictors"`
	CacheHits           uint64 `json:"cache_hits"`
	CacheMisses         uint64 `json:"cache_misses"`
	SearchJobsInFlight  int    `json:"search_jobs_in_flight"`
	SearchJobsCompleted uint64 `json:"search_jobs_completed"`
	// Store reports the backing profile store's counters; omitted when
	// the engine runs without one.
	Store *storeHealth `json:"store,omitempty"`
	// Fidelity reports the fidelity observatory's aggregates; omitted when
	// the engine runs without sampling.
	Fidelity *api.FidelityStats `json:"fidelity,omitempty"`
}

// storeHealth is the /healthz view of mipp.StoreStats.
type storeHealth struct {
	Objects          int    `json:"objects"`
	ResidentEntries  int    `json:"resident_entries"`
	ResidentBytes    int64  `json:"resident_bytes"`
	MaxResidentBytes int64  `json:"max_resident_bytes"`
	Hits             uint64 `json:"hits"`
	Misses           uint64 `json:"misses"`
	Loads            uint64 `json:"loads"`
	Evictions        uint64 `json:"evictions"`
	EvictedBytes     uint64 `json:"evicted_bytes"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.engine.Stats()
	h := healthResponse{
		SchemaVersion:       api.SchemaVersion,
		Status:              "ok",
		UptimeSeconds:       int64(time.Since(s.started).Seconds()),
		Workloads:           st.Profiles,
		CachedPredictors:    st.CachedPredictors,
		CacheHits:           st.CacheHits,
		CacheMisses:         st.CacheMisses,
		SearchJobsInFlight:  st.SearchJobsInFlight,
		SearchJobsCompleted: st.SearchJobsCompleted,
	}
	if st.Store != nil {
		h.Store = &storeHealth{
			Objects:          st.Store.Objects,
			ResidentEntries:  st.Store.ResidentEntries,
			ResidentBytes:    st.Store.ResidentBytes,
			MaxResidentBytes: st.Store.MaxResidentBytes,
			Hits:             st.Store.Hits,
			Misses:           st.Store.Misses,
			Loads:            st.Store.Loads,
			Evictions:        st.Store.Evictions,
			EvictedBytes:     st.Store.EvictedBytes,
		}
	}
	h.Fidelity = s.engine.FidelityStats()
	writeJSON(w, http.StatusOK, h)
}

// errorSentinels are the label values of mipp_http_errors_total,
// pre-registered at construction so every class exposes a zero-valued
// series from boot.
var errorSentinels = []string{
	"bad_request", "unknown_workload", "unknown_job", "busy", "canceled", "internal",
}

// sentinelFor classifies an error response for the error counter: the
// Evaluator sentinels first, then the status-code class for errors born in
// the transport layer (decode failures, oversized bodies).
func sentinelFor(status int, err error) string {
	switch {
	case errors.Is(err, mipp.ErrUnknownWorkload):
		return "unknown_workload"
	case errors.Is(err, mipp.ErrUnknownJob):
		return "unknown_job"
	case errors.Is(err, mipp.ErrBusy):
		return "busy"
	case errors.Is(err, mipp.ErrBadRequest):
		return "bad_request"
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return "canceled"
	case status >= 400 && status < 500:
		return "bad_request"
	}
	return "internal"
}

// writeError writes the error envelope and counts it by sentinel class.
func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	if c := s.errors[sentinelFor(status, err)]; c != nil {
		c.Inc()
	}
	writeError(w, status, err)
}

// statusFor maps service errors onto HTTP statuses via the sentinel errors
// of the Evaluator contract.
func statusFor(err error) int {
	switch {
	case errors.Is(err, mipp.ErrUnknownWorkload), errors.Is(err, mipp.ErrUnknownJob):
		return http.StatusNotFound
	case errors.Is(err, mipp.ErrBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, mipp.ErrBusy):
		return http.StatusTooManyRequests
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The client went away or timed out mid-evaluation.
		return 499
	}
	return http.StatusInternalServerError
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, api.ErrorResponse{SchemaVersion: api.SchemaVersion, Error: err.Error()})
}
