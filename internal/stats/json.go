package stats

import (
	"encoding/json"
	"strconv"
)

// MarshalJSON encodes the histogram as a JSON object of key → weight, so
// profiles round-trip through cmd/aip and cmd/pmt.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	m := make(map[string]float64, len(h.counts))
	for k, w := range h.counts {
		m[strconv.FormatInt(k, 10)] = w
	}
	return json.Marshal(m)
}

// UnmarshalJSON decodes the object form produced by MarshalJSON.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var m map[string]float64
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	h.counts = make(map[int64]float64, len(m))
	h.total = 0
	for ks, w := range m {
		k, err := strconv.ParseInt(ks, 10, 64)
		if err != nil {
			return err
		}
		h.counts[k] = w
		h.total += w
	}
	return nil
}
