package search_test

// OnUpdate sink tests: the streaming hook must fire once per generation
// with the step's counters, carry the incumbent only once one exists,
// emit the incremental Pareto front only when it changed, and end with a
// front identical to the final report's — all without perturbing the
// report itself (the sink is observation, not participation).

import (
	"context"
	"encoding/json"
	"testing"

	"mipp"
	"mipp/arch"
	"mipp/search"
)

func TestOnUpdatePerGeneration(t *testing.T) {
	pd := predictor(t)
	space := arch.TableSpace()
	ev := mipp.NewSearchEvaluator(pd, 0)
	opts := search.Options{
		Seed:        7,
		Budget:      243,
		Objective:   search.ObjectiveED2P,
		Constraints: search.Constraints{MaxWatts: 40},
	}

	var updates []search.Update
	withSink := opts
	withSink.OnUpdate = func(u search.Update) { updates = append(updates, u) }
	rep, err := search.Run(context.Background(), ev, space, search.Genetic{Population: 16, Generations: 6}, withSink)
	if err != nil {
		t.Fatal(err)
	}
	if len(updates) != len(rep.Trace) {
		t.Fatalf("%d updates for %d trace steps", len(updates), len(rep.Trace))
	}
	fronts := 0
	for i, u := range updates {
		if u.Step != rep.Trace[i] {
			t.Errorf("update %d step = %+v, want trace step %+v", i, u.Step, rep.Trace[i])
		}
		if u.Front != nil {
			fronts++
		}
	}
	if fronts == 0 {
		t.Error("no update carried a front")
	}
	if fronts == len(updates) && len(updates) > 1 {
		t.Error("every update carried a front: unchanged fronts should be elided")
	}

	// The last front seen incrementally is the report's front.
	var lastFront []search.Eval
	for _, u := range updates {
		if u.Front != nil {
			lastFront = u.Front
		}
	}
	got, _ := json.Marshal(lastFront)
	want, _ := json.Marshal(rep.Front)
	if string(got) != string(want) {
		t.Errorf("final incremental front differs from the report's:\n%s\n%s", got, want)
	}

	// The incumbent in the last update is the report's best.
	last := updates[len(updates)-1]
	if rep.Best != nil {
		if last.Best.Index != rep.Best.Index {
			t.Errorf("last update best %+v != report best %+v", last.Best, rep.Best)
		}
	} else if last.Best.Index != -1 {
		t.Errorf("no feasible point, but last update best = %+v", last.Best)
	}

	// The sink must not change the outcome: a silent run with the same
	// seed produces a byte-identical report.
	silent, err := search.Run(context.Background(), ev, space, search.Genetic{Population: 16, Generations: 6}, opts)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(rep)
	b, _ := json.Marshal(silent)
	if string(a) != string(b) {
		t.Error("attaching OnUpdate changed the report")
	}
}

func TestOnUpdateInfeasibleHasNoBest(t *testing.T) {
	pd := predictor(t)
	var updates []search.Update
	_, err := search.Run(context.Background(), mipp.NewSearchEvaluator(pd, 0),
		arch.TableSpace(), search.Random{Samples: 20}, search.Options{
			Seed:        3,
			Constraints: search.Constraints{MaxWatts: 0.001}, // nothing feasible
			OnUpdate:    func(u search.Update) { updates = append(updates, u) },
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(updates) == 0 {
		t.Fatal("no updates")
	}
	for i, u := range updates {
		if u.Best.Index != -1 {
			t.Errorf("update %d carries best %+v with nothing feasible", i, u.Best)
		}
		if u.Front != nil {
			t.Errorf("update %d carries a front with nothing feasible", i)
		}
	}
}
