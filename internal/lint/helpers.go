package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// pkgFuncCall resolves a call to a package-level function, returning the
// defining package path and function name ("", "" when the call is a method
// call, a conversion, or unresolvable).
func pkgFuncCall(pass *Pass, call *ast.CallExpr) (pkgPath, name string) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := pass.ObjectOf(id).(*types.PkgName); ok {
				return pn.Imported().Path(), fun.Sel.Name
			}
		}
	case *ast.Ident:
		if obj, ok := pass.ObjectOf(fun).(*types.Func); ok && obj.Pkg() != nil {
			return obj.Pkg().Path(), obj.Name()
		}
	}
	return "", ""
}

// methodCallRecv returns the receiver expression and method name of a
// method call, or nil.
func methodCallRecv(call *ast.CallExpr) (ast.Expr, string) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X, sel.Sel.Name
	}
	return nil, ""
}

// render prints an expression compactly — the cheap structural identity the
// analyzers use to match "the same lock" or "the same slice".
func render(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	_ = printer.Fprint(&buf, fset, e)
	return buf.String()
}

// isErrorType reports whether t's static type is exactly error.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// isNilExpr reports whether e is the predeclared nil.
func isNilExpr(pass *Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := pass.ObjectOf(id).(*types.Nil)
	return isNil || id.Name == "nil"
}

// inScope reports whether path is covered by the analyzer's package scope:
// an empty scope means everywhere (used by the golden tests), otherwise the
// package path must match one of the entries exactly. Paths arriving from
// `go vet` test variants ("mipp [mipp.test]") are normalized first.
func inScope(scope []string, path string) bool {
	if len(scope) == 0 {
		return true
	}
	if i := indexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	for _, s := range scope {
		if s == path {
			return true
		}
	}
	return false
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// funcDecls yields every function declaration in the pass's files.
func funcDecls(pass *Pass, fn func(*ast.FuncDecl)) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}

// inspectSkippingFuncLits walks n, calling fn for every node but not
// descending into function literals — the bodies of closures run at some
// other time, under some other locks.
func inspectSkippingFuncLits(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(node ast.Node) bool {
		if _, ok := node.(*ast.FuncLit); ok && node != n {
			return false
		}
		return fn(node)
	})
}
