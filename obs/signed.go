package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// SignedHistogram counts observations of a signed quantity — model-minus-
// simulator residuals — into buckets mirrored symmetrically around zero,
// and tracks the running minimum and maximum so the extremes survive even
// when they land in the open-ended tail buckets. Observe is lock-free: one
// atomic bucket increment, one CAS on the sum bits, and one CAS each on the
// min/max bits when the observation extends them (which becomes rare as the
// envelope settles).
//
// It renders as a Prometheus histogram (cumulative le= buckets over the
// signed bounds, then _sum and _count) extended with two extra sample
// lines, _min and _max, emitted once at least one value has been observed.
// A plain histogram over positive bounds cannot represent a signed error
// distribution without losing the sign — and the sign is the point: it
// separates a model that over-predicts from one that under-predicts.
type SignedHistogram struct {
	bounds []float64       // sorted signed upper bounds; +Inf bucket implicit
	counts []atomic.Uint64 // len(bounds)+1
	sum    atomic.Uint64   // float64 bits of the running sum
	min    atomic.Uint64   // float64 bits of the running minimum (+Inf until observed)
	max    atomic.Uint64   // float64 bits of the running maximum (-Inf until observed)
}

// NewSignedHistogram returns a histogram whose buckets are the given
// magnitudes mirrored around zero: magnitudes m1 < m2 < ... produce bounds
// -mk, ..., -m1, 0, m1, ..., mk (plus the implicit +Inf bucket). Call it
// once at startup — construction allocates. Non-positive magnitudes are
// rejected by panic: they would duplicate the zero bound.
func NewSignedHistogram(magnitudes ...float64) *SignedHistogram {
	ms := append([]float64(nil), magnitudes...)
	sort.Float64s(ms)
	for _, m := range ms {
		if m <= 0 {
			panic("obs: NewSignedHistogram magnitudes must be positive (zero is always a bound)")
		}
	}
	bounds := make([]float64, 0, 2*len(ms)+1)
	for i := len(ms) - 1; i >= 0; i-- {
		bounds = append(bounds, -ms[i])
	}
	bounds = append(bounds, 0)
	bounds = append(bounds, ms...)
	h := &SignedHistogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	h.min.Store(math.Float64bits(math.Inf(1)))
	h.max.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// ResidualBuckets are the default signed-residual magnitudes: half-decade
// steps from ±0.001 to ±0.5, wide enough for both a per-instruction CPI
// component residual and a per-component watts residual on the reference
// design space.
var ResidualBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5}

// Observe records one signed value.
func (h *SignedHistogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64frombits(old) + v
		if h.sum.CompareAndSwap(old, math.Float64bits(next)) {
			break
		}
	}
	for {
		old := h.min.Load()
		if v >= math.Float64frombits(old) || h.min.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= math.Float64frombits(old) || h.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the total number of observations.
func (h *SignedHistogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *SignedHistogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Min returns the smallest observed value (+Inf before any observation).
func (h *SignedHistogram) Min() float64 { return math.Float64frombits(h.min.Load()) }

// Max returns the largest observed value (-Inf before any observation).
func (h *SignedHistogram) Max() float64 { return math.Float64frombits(h.max.Load()) }

// RegisterSignedHistogram attaches an existing signed histogram as a series.
// It renders under the histogram TYPE with two extra _min/_max sample lines.
func (r *Registry) RegisterSignedHistogram(name, help string, h *SignedHistogram, labels ...Label) {
	r.add(name, help, kindHistogram, &series{sh: h}, labels)
}
