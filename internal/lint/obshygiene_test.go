package lint_test

import (
	"testing"

	"mipp/internal/lint"
	"mipp/internal/lint/linttest"
)

func TestObsHygiene(t *testing.T) {
	linttest.Run(t, "testdata/obshygiene", lint.ObsHygiene)
}
