package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// obsPkgPath is the observability package whose construction API the
// analyzer polices. The package itself is exempt (it is the implementation).
const obsPkgPath = "mipp/obs"

// obsConstructors are the package-level mipp/obs functions that build or
// register an instrument — startup work that allocates and locks.
var obsConstructors = map[string]bool{
	"NewHistogram":       true,
	"NewSignedHistogram": true,
	"NewHTTPStats":       true,
	"NewRegistry":        true,
}

// registryMethods are the *obs.Registry methods that register a series.
// Their first argument is the metric name, which must be a compile-time
// constant: dynamic names create unbounded series cardinality and defeat
// grep-ability of the metric namespace.
var registryMethods = map[string]bool{
	"Counter":           true,
	"Gauge":             true,
	"Histogram":         true,
	"RegisterCounter":   true,
	"RegisterGauge":     true,
	"RegisterHistogram": true,
	"CounterFunc":       true,
	"GaugeFunc":         true,

	"RegisterSignedHistogram": true,
	"CounterVec":              true,
	"GaugeVec":                true,
}

// ObsHygiene enforces the observability layer's construction discipline:
// instruments are built once at startup, mutated lock-free forever after.
//
// Diagnostic kinds:
//
//   - construct-in-hotpath: an obs constructor or Registry registration
//     inside a //mipp:hotpath function — registration locks and allocates,
//     which the hot path's allocation budget forbids. Hot paths touch
//     pre-built instruments (Inc/Add/Observe) only.
//   - construct-in-loop: registration inside any loop — a loop that
//     registers either panics on the duplicate series or leaks one series
//     per iteration. The sanctioned pattern (pre-registering one series per
//     known label value at startup) is deliberate enough to carry a
//     //mipp:allow.
//   - non-const-name: a Registry registration whose metric-name argument is
//     not a compile-time constant string. Label VALUES may be dynamic (a
//     route, a replica URL); metric NAMES are the grep-able contract and
//     must be literals.
var ObsHygiene = &Analyzer{
	Name: "obshygiene",
	Doc: "enforces metrics construction discipline: no instrument registration " +
		"in //mipp:hotpath functions or loops, and compile-time-constant metric names",
	Run: runObsHygiene,
}

func runObsHygiene(pass *Pass) error {
	if pass.Path == obsPkgPath {
		return nil
	}
	for _, f := range pass.Files {
		hot := make(map[*ast.FuncDecl]bool)
		for _, fd := range hotpathFuncs(f) {
			hot[fd] = true
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkObsHygiene(pass, fd, hot[fd])
		}
	}
	return nil
}

// checkObsHygiene walks one function, tracking loop nesting the same way
// the hotpath analyzer does (loop init/cond/post run once or per iteration;
// only the body is "in the loop" for registration purposes — a registration
// per iteration is the bug either way, so all four count).
func checkObsHygiene(pass *Pass, fd *ast.FuncDecl, inHotpath bool) {
	var walk func(n ast.Node, inLoop bool)
	walk = func(n ast.Node, inLoop bool) {
		ast.Inspect(n, func(node ast.Node) bool {
			if node == nil || node == n {
				return true
			}
			switch node := node.(type) {
			case *ast.ForStmt:
				if node.Init != nil {
					walk(node.Init, inLoop)
				}
				if node.Cond != nil {
					walk(node.Cond, inLoop)
				}
				if node.Post != nil {
					walk(node.Post, inLoop)
				}
				walk(node.Body, true)
				return false
			case *ast.RangeStmt:
				walk(node.X, inLoop)
				walk(node.Body, true)
				return false
			case *ast.CallExpr:
				checkObsCall(pass, fd, node, inHotpath, inLoop)
			}
			return true
		})
	}
	walk(fd.Body, false)
}

func checkObsCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, inHotpath, inLoop bool) {
	what := obsConstruction(pass, call)
	if what == "" {
		return
	}
	if inHotpath {
		pass.Reportf(call.Pos(), "construct-in-hotpath",
			"%s in hot path %s: instrument registration locks and allocates; build instruments at startup and mutate them here",
			what, fd.Name.Name)
	}
	if inLoop {
		pass.Reportf(call.Pos(), "construct-in-loop",
			"%s inside a loop in %s: per-iteration registration panics on the duplicate series or leaks one per iteration; hoist it (pre-registering per label value is fine — annotate it)",
			what, fd.Name.Name)
	}
	checkMetricName(pass, fd, call, what)
}

// obsConstruction classifies call as an obs construction/registration site,
// returning a human-readable description ("" when it is not one).
func obsConstruction(pass *Pass, call *ast.CallExpr) string {
	if pkg, name := pkgFuncCall(pass, call); pkg == obsPkgPath && obsConstructors[name] {
		return "obs." + name
	}
	recv, method := methodCallRecv(call)
	if recv == nil || !registryMethods[method] {
		return ""
	}
	if t := pass.TypeOf(recv); isObsRegistry(t) {
		return "Registry." + method
	}
	return ""
}

// isObsRegistry reports whether t is mipp/obs.Registry or a pointer to it.
func isObsRegistry(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == obsPkgPath && obj.Name() == "Registry"
}

// checkMetricName flags a Registry registration whose first (name) argument
// is not a compile-time constant string.
func checkMetricName(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, what string) {
	if len(call.Args) == 0 || what == "obs.NewHistogram" || what == "obs.NewSignedHistogram" || what == "obs.NewRegistry" {
		return
	}
	arg := call.Args[0]
	if what == "obs.NewHTTPStats" {
		// NewHTTPStats(registry, route): the route label value may be
		// dynamic; there is no name argument to check.
		return
	}
	if pass.Info == nil {
		return
	}
	tv, ok := pass.Info.Types[arg]
	if ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return
	}
	pass.Reportf(arg.Pos(), "non-const-name",
		"metric name passed to %s in %s is not a compile-time constant: dynamic names create unbounded cardinality; put variation in label values",
		what, fd.Name.Name)
}
