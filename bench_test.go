package mipp_test

// One benchmark per table and figure of the paper's evaluation. Each bench
// regenerates the experiment through the shared harness in internal/exp,
// which in turn evaluates the model through the public mipp façade;
// `go run ./cmd/experiments -run <id>` prints the same rows readably.
//
// The benches run on shortened traces and a workload subset so the full
// `go test -bench=. -benchmem` sweep finishes in minutes; cmd/experiments
// defaults to the full suite at 300k uops.

import (
	"context"
	"io"
	"runtime"
	"sync"
	"testing"

	"mipp"
	"mipp/api"
	"mipp/arch"
	"mipp/fidelity"
	"mipp/internal/exp"
)

const benchN = 60_000

var benchSuite = struct {
	once  sync.Once
	suite *exp.Suite
}{}

// suite returns a process-wide memoized experiment suite so consecutive
// benches share profiles and simulation results.
func suite() *exp.Suite {
	benchSuite.once.Do(func() {
		s := exp.NewSuite(benchN)
		// A representative subset: memory-bound chaser, streamer,
		// compute-bound FP, branchy integer, phased mix, stencil.
		s.Workloads = []string{"mcf", "libquantum", "gamess", "gobmk", "gcc", "bwaves", "soplex", "h264ref"}
		benchSuite.suite = s
	})
	return benchSuite.suite
}

func runExp(b *testing.B, id string) {
	b.Helper()
	e, ok := exp.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	s := suite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Run(s, io.Discard)
	}
}

// Chapter 3 — modeling the core.

func BenchmarkFig3_1_UopsPerInstruction(b *testing.B)   { runExp(b, "fig3.1") }
func BenchmarkFig3_4_DependenceChains(b *testing.B)     { runExp(b, "fig3.4") }
func BenchmarkFig3_6_DispatchRateLimiters(b *testing.B) { runExp(b, "fig3.6") }
func BenchmarkFig3_7_BaseComponentError(b *testing.B)   { runExp(b, "fig3.7") }
func BenchmarkFig3_9_EntropyLinearFit(b *testing.B)     { runExp(b, "fig3.9") }
func BenchmarkFig3_10_PredictorAccuracy(b *testing.B)   { runExp(b, "fig3.10") }

// Chapter 4 — modeling the memory subsystem.

func BenchmarkFig4_2_CacheMPKI(b *testing.B)        { runExp(b, "fig4.2") }
func BenchmarkFig4_3_MLPImpact(b *testing.B)        { runExp(b, "fig4.3") }
func BenchmarkFig4_4_ColdVsCapacity(b *testing.B)   { runExp(b, "fig4.4") }
func BenchmarkFig4_7_StrideCategories(b *testing.B) { runExp(b, "fig4.7") }
func BenchmarkFig4_9_LLCChaining(b *testing.B)      { runExp(b, "fig4.9") }

// Chapter 5 — sampling methodology.

func BenchmarkFig5_2_InstrMixSampling(b *testing.B)   { runExp(b, "fig5.2") }
func BenchmarkFig5_4_ChainInterpolation(b *testing.B) { runExp(b, "fig5.4") }
func BenchmarkFig5_5_ChainSampling(b *testing.B)      { runExp(b, "fig5.5") }
func BenchmarkFig5_6_BranchShare(b *testing.B)        { runExp(b, "fig5.6") }

// Chapter 6 — evaluation.

func BenchmarkTable6_1_ReferenceConfig(b *testing.B)     { runExp(b, "tab6.1") }
func BenchmarkFig6_1_CPIStacks(b *testing.B)             { runExp(b, "fig6.1") }
func BenchmarkFig6_3_SamplingError(b *testing.B)         { runExp(b, "fig6.3") }
func BenchmarkTable6_2_ComponentErrors(b *testing.B)     { runExp(b, "tab6.2") }
func BenchmarkTable6_3_DesignSpace(b *testing.B)         { runExp(b, "tab6.3") }
func BenchmarkFig6_4_SeparateVsCombined(b *testing.B)    { runExp(b, "fig6.4") }
func BenchmarkFig6_5_PerfErrorDesignSpace(b *testing.B)  { runExp(b, "fig6.5") }
func BenchmarkFig6_6_CPIScatter(b *testing.B)            { runExp(b, "fig6.6") }
func BenchmarkFig6_7_PowerStacks(b *testing.B)           { runExp(b, "fig6.7") }
func BenchmarkFig6_8_PowerErrorCDF(b *testing.B)         { runExp(b, "fig6.8") }
func BenchmarkFig6_9_PowerErrorDesignSpace(b *testing.B) { runExp(b, "fig6.9") }
func BenchmarkFig6_10_PowerScatter(b *testing.B)         { runExp(b, "fig6.10") }
func BenchmarkFig6_11_BaseComponent(b *testing.B)        { runExp(b, "fig6.11") }
func BenchmarkFig6_12_DRAMComponent(b *testing.B)        { runExp(b, "fig6.12") }
func BenchmarkFig6_13_LowPowerCore(b *testing.B)         { runExp(b, "fig6.13") }
func BenchmarkFig6_14_PhaseAnalysis(b *testing.B)        { runExp(b, "fig6.14") }
func BenchmarkFig6_15_MLPModelError(b *testing.B)        { runExp(b, "fig6.15") }
func BenchmarkFig6_16_MLPPerfError(b *testing.B)         { runExp(b, "fig6.16") }
func BenchmarkFig6_17_MLPErrorCDF(b *testing.B)          { runExp(b, "fig6.17") }
func BenchmarkFig6_18_PrefetchMLPError(b *testing.B)     { runExp(b, "fig6.18") }

// Serving path — Engine.Evaluate batch throughput, the baseline for the
// mippd query path. Reported as configs/sec (items per wall second) at one
// worker and at GOMAXPROCS, over 2 workloads × the 81-point space sample.

var benchEngine = struct {
	once   sync.Once
	engine *mipp.Engine
	err    error
}{}

func engineForBench(b *testing.B) *mipp.Engine {
	b.Helper()
	benchEngine.once.Do(func() {
		e := mipp.NewEngine()
		for _, w := range []string{"mcf", "gamess"} {
			p, err := mipp.NewProfiler().Profile(w, benchN)
			if err != nil {
				benchEngine.err = err
				return
			}
			if err := e.Register(w, p); err != nil {
				benchEngine.err = err
				return
			}
		}
		// Compile the default predictors up front so the benchmark
		// measures steady-state serving, not first-query compilation.
		for _, w := range []string{"mcf", "gamess"} {
			if _, err := e.Predictor(w, api.PredictorSpec{}); err != nil {
				benchEngine.err = err
				return
			}
		}
		benchEngine.engine = e
	})
	if benchEngine.err != nil {
		b.Fatal(benchEngine.err)
	}
	return benchEngine.engine
}

func benchEngineEvaluate(b *testing.B, workers int) {
	e := engineForBench(b)
	req := &api.BatchRequest{
		SchemaVersion: api.SchemaVersion,
		Workloads:     []string{"mcf", "gamess"},
		Space:         &api.SpaceSpec{Kind: "design", Stride: 3},
		Workers:       workers,
	}
	items := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := e.Evaluate(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		items = len(resp.Items)
		for _, item := range resp.Items {
			if item.Error != "" {
				b.Fatalf("%s/%s: %s", item.Workload, item.Config, item.Error)
			}
		}
	}
	b.StopTimer()
	if items > 0 && b.Elapsed() > 0 {
		b.ReportMetric(float64(items*b.N)/b.Elapsed().Seconds(), "configs/s")
	}
}

func BenchmarkEngineEvaluate_1worker(b *testing.B) { benchEngineEvaluate(b, 1) }
func BenchmarkEngineEvaluate_Nworkers(b *testing.B) {
	benchEngineEvaluate(b, 0) // 0 = engine default (GOMAXPROCS)
}

// BenchmarkEngineEvaluateFidelity re-measures the batch serving path with
// the fidelity sampler attached (PR 10): the per-config overhead is one
// allocation-free FNV hash in offerFidelity, so throughput must track
// BenchmarkEngineEvaluate_Nworkers — CI gates the ratio. SampleEvery is set
// so the predicate runs on every served config but essentially never
// selects, isolating the steady-state offer cost from simulation cost.
func BenchmarkEngineEvaluateFidelity(b *testing.B) {
	e := mipp.NewEngine(mipp.WithFidelitySampling(mipp.FidelityOptions{
		SampleEvery: 1 << 20,
		Budget:      -1, // unlimited: the budget fast path must not hide the hash
		GroundTruth: benchGroundTruth{},
	}))
	defer e.Close()
	for _, w := range []string{"mcf", "gamess"} {
		p, err := mipp.NewProfiler().Profile(w, benchN)
		if err != nil {
			b.Fatal(err)
		}
		if err := e.Register(w, p); err != nil {
			b.Fatal(err)
		}
		if _, err := e.Predictor(w, api.PredictorSpec{}); err != nil {
			b.Fatal(err)
		}
	}
	req := &api.BatchRequest{
		SchemaVersion: api.SchemaVersion,
		Workloads:     []string{"mcf", "gamess"},
		Space:         &api.SpaceSpec{Kind: "design", Stride: 3},
	}
	items := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := e.Evaluate(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		items = len(resp.Items)
	}
	b.StopTimer()
	if items > 0 && b.Elapsed() > 0 {
		b.ReportMetric(float64(items*b.N)/b.Elapsed().Seconds(), "configs/s")
	}
}

// benchGroundTruth is never meaningfully invoked (the predicate all but
// never selects); it exists so the sampler is fully armed.
type benchGroundTruth struct{}

func (benchGroundTruth) GroundTruth(ctx context.Context, workload string, cfg *arch.Config) (fidelity.Measurement, error) {
	return fidelity.Measurement{CPI: 1, Watts: 1}, nil
}

// BenchmarkEnginePredict measures single-query latency through the cached
// serving path — the "nearly free per query" promise the service rests on.
func BenchmarkEnginePredict(b *testing.B) {
	e := engineForBench(b)
	req := &api.PredictRequest{
		SchemaVersion: api.SchemaVersion,
		Workload:      "mcf",
		Config:        api.ConfigSpec{Name: "reference"},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Predict(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
	if hits := e.Stats().CacheHits; hits == 0 {
		b.Fatal("predictor cache never hit")
	}
}

// Compile → evaluate split (PR 3): throughput and allocation discipline of
// the batched phase-2 kernel, with the sequential and cold-compile paths
// alongside for the trajectory. CI parses these into BENCH_pr3.json
// (internal/tools/benchjson) and fails if allocs/config on the batched hot
// path exceeds its budget.

var benchPredictor = struct {
	once sync.Once
	pd   *mipp.Predictor
	err  error
}{}

func predictorForBench(b *testing.B) *mipp.Predictor {
	b.Helper()
	benchPredictor.once.Do(func() {
		p, err := mipp.NewProfiler().Profile("mcf", benchN)
		if err != nil {
			benchPredictor.err = err
			return
		}
		benchPredictor.pd, benchPredictor.err = mipp.NewPredictor(p)
	})
	if benchPredictor.err != nil {
		b.Fatal(benchPredictor.err)
	}
	return benchPredictor.pd
}

// reportPerConfig normalizes a phase-2 benchmark to per-configuration
// metrics: throughput, latency and allocations.
func reportPerConfig(b *testing.B, nConfigs int, m0, m1 *runtime.MemStats) {
	total := float64(b.N * nConfigs)
	if total == 0 || b.Elapsed() <= 0 {
		return
	}
	b.ReportMetric(total/b.Elapsed().Seconds(), "configs/s")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/total, "ns/config")
	b.ReportMetric(float64(m1.Mallocs-m0.Mallocs)/total, "allocs/config")
}

// BenchmarkPredictBatch is the batched hot path: one compiled kernel over
// the 81-config stock design-space sample, memos warm.
func BenchmarkPredictBatch(b *testing.B) {
	pd := predictorForBench(b)
	configs := arch.DesignSpaceSample(3)
	ctx := context.Background()
	if _, _, err := pd.PredictBatch(ctx, configs); err != nil {
		b.Fatal(err)
	}
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := pd.PredictBatch(ctx, configs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	runtime.ReadMemStats(&m1)
	reportPerConfig(b, len(configs), &m0, &m1)
}

// BenchmarkPredictBatchInto is the zero-allocation entry point (PR 8): the
// same 81-config mixed-axis sample through one caller-owned BatchResult
// reused across iterations. Steady state allocates nothing — CI gates the
// -benchmem allocs/op column at 0 and throughput at ≥500k configs/s.
func BenchmarkPredictBatchInto(b *testing.B) {
	pd := predictorForBench(b)
	configs := arch.DesignSpaceSample(3)
	ctx := context.Background()
	var br mipp.BatchResult
	if err := pd.PredictBatchInto(ctx, configs, &br); err != nil {
		b.Fatal(err)
	}
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pd.PredictBatchInto(ctx, configs, &br); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	runtime.ReadMemStats(&m1)
	reportPerConfig(b, len(configs), &m0, &m1)
}

// BenchmarkPredictBatchDVFS is the frequency-sweep fast path (PR 8):
// consecutive configurations that differ only in clock skip the
// clock-independent stage entirely (geometry, miss ratios, dispatch,
// branches) and replay it from the batch's cached invariants, paying only
// the per-clock memory model and the DRAM combine. CI gates this shape at
// ≥1M configs/s and 0 allocs/op.
func BenchmarkPredictBatchDVFS(b *testing.B) {
	pd := predictorForBench(b)
	base := arch.Reference()
	points := arch.DVFSPoints()
	configs := make([]*arch.Config, 0, 100*len(points))
	for len(configs) < cap(configs) {
		for _, p := range points {
			configs = append(configs, arch.WithDVFS(base, p))
		}
	}
	ctx := context.Background()
	var br mipp.BatchResult
	if err := pd.PredictBatchInto(ctx, configs, &br); err != nil {
		b.Fatal(err)
	}
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pd.PredictBatchInto(ctx, configs, &br); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	runtime.ReadMemStats(&m1)
	reportPerConfig(b, len(configs), &m0, &m1)
}

// BenchmarkPredictSequential is the same space through one-at-a-time
// Predict calls — what the batched path saves in per-call overhead.
func BenchmarkPredictSequential(b *testing.B) {
	pd := predictorForBench(b)
	configs := arch.DesignSpaceSample(3)
	for _, cfg := range configs {
		if _, err := pd.Predict(cfg); err != nil {
			b.Fatal(err)
		}
	}
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cfg := range configs {
			if _, err := pd.Predict(cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	runtime.ReadMemStats(&m1)
	reportPerConfig(b, len(configs), &m0, &m1)
}

// BenchmarkPredictColdCompile measures phase 1: building a fresh compiled
// predictor (StatStack curves, per-micro MLP models) plus one reference
// query — the cost every (workload, option-set) pair pays exactly once.
func BenchmarkPredictColdCompile(b *testing.B) {
	p, err := mipp.NewProfiler().Profile("mcf", benchN)
	if err != nil {
		b.Fatal(err)
	}
	ref := arch.Reference()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cold, err := mipp.NewPredictor(p)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := cold.Predict(ref); err != nil {
			b.Fatal(err)
		}
	}
}

// Chapter 7 — applications.

func BenchmarkFig7_1_LibquantumWhatIf(b *testing.B)   { runExp(b, "fig7.1") }
func BenchmarkFig7_2_AppSpecificCore(b *testing.B)    { runExp(b, "fig7.2") }
func BenchmarkTable7_1_PowerConstrained(b *testing.B) { runExp(b, "tab7.1") }
func BenchmarkTable7_2_DVFSSettings(b *testing.B)     { runExp(b, "tab7.2") }
func BenchmarkFig7_3_ED2P(b *testing.B)               { runExp(b, "fig7.3") }
func BenchmarkFig7_4_ParetoFrontiers(b *testing.B)    { runExp(b, "fig7.4") }
func BenchmarkFig7_6_DesignSpaceError(b *testing.B)   { runExp(b, "fig7.6") }
func BenchmarkFig7_7_ParetoMetrics(b *testing.B)      { runExp(b, "fig7.7") }
func BenchmarkFig7_9_HVR(b *testing.B)                { runExp(b, "fig7.9") }
func BenchmarkFig7_10_EmpiricalPareto(b *testing.B)   { runExp(b, "fig7.10") }
func BenchmarkFig7_11_EmpiricalMetrics(b *testing.B)  { runExp(b, "fig7.11") }
