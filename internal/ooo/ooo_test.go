package ooo

import (
	"context"
	"errors"
	"testing"
	"time"

	"mipp/internal/config"
	"mipp/internal/perf"
	"mipp/internal/trace"
	"mipp/internal/workload"
)

func simulate(t *testing.T, name string, n int, opt Options) *Result {
	t.Helper()
	s := workload.MustGenerate(name, n, 0)
	r, err := Simulate(config.Reference(), s, opt)
	if err != nil {
		t.Fatalf("Simulate(%s): %v", name, err)
	}
	if r.Uops != int64(s.Len()) {
		t.Fatalf("%s: committed %d of %d uops", name, r.Uops, s.Len())
	}
	return r
}

func TestSimulateBasicInvariants(t *testing.T) {
	for _, name := range []string{"gamess", "mcf", "libquantum", "gobmk"} {
		r := simulate(t, name, 50_000, Options{})
		if r.Cycles <= 0 {
			t.Fatalf("%s: non-positive cycles %d", name, r.Cycles)
		}
		if r.Instructions <= 0 || r.Instructions > r.Uops {
			t.Errorf("%s: instructions %d out of range (uops %d)", name, r.Instructions, r.Uops)
		}
		// A core of width D cannot beat D uops/cycle.
		if upc := r.UPC(); upc > 4.0001 {
			t.Errorf("%s: UPC %.3f exceeds dispatch width", name, upc)
		}
		// The CPI stack must account for every cycle.
		if total := r.Stack.Total(); int64(total+0.5) != r.Cycles {
			t.Errorf("%s: stack total %.0f != cycles %d", name, total, r.Cycles)
		}
		if r.MLP < 1 {
			t.Errorf("%s: MLP %.3f < 1", name, r.MLP)
		}
	}
}

func TestPerfectFlagsReduceStalls(t *testing.T) {
	base := simulate(t, "mcf", 50_000, Options{})
	perfect := simulate(t, "mcf", 50_000, Options{PerfectBP: true, PerfectICache: true, PerfectDCache: true})
	if perfect.Cycles >= base.Cycles {
		t.Errorf("perfect core not faster: %d vs %d cycles", perfect.Cycles, base.Cycles)
	}
	if perfect.Stack.Cycles[perf.DRAM] != 0 {
		t.Errorf("perfect D-cache still shows DRAM stalls: %.0f", perfect.Stack.Cycles[perf.DRAM])
	}
	if perfect.BranchMispredicts != 0 {
		t.Errorf("perfect BP still mispredicts: %d", perfect.BranchMispredicts)
	}
}

func TestMemoryBoundVsComputeBound(t *testing.T) {
	// Long enough that cold-start effects amortize for the resident
	// workload (the suite sees no warmup, exactly like the paper's
	// sampled traces).
	mem := simulate(t, "mcf", 200_000, Options{})
	cpu := simulate(t, "gamess", 200_000, Options{})
	if mem.Stack.Fraction(perf.DRAM) < 0.2 {
		t.Errorf("mcf DRAM fraction %.2f, want >= 0.2 (stack %v)", mem.Stack.Fraction(perf.DRAM), &mem.Stack)
	}
	if cpu.Stack.Fraction(perf.DRAM) > 0.2 {
		t.Errorf("gamess DRAM fraction %.2f, want < 0.2", cpu.Stack.Fraction(perf.DRAM))
	}
	if mem.CPI() <= cpu.CPI() {
		t.Errorf("mcf CPI %.2f should exceed gamess CPI %.2f", mem.CPI(), cpu.CPI())
	}
}

func TestStreamingHasHigherMLPThanChasing(t *testing.T) {
	stream := simulate(t, "libquantum", 50_000, Options{})
	chase := simulate(t, "mcf", 50_000, Options{})
	if stream.MLP <= chase.MLP {
		t.Errorf("libquantum MLP %.2f should exceed mcf MLP %.2f", stream.MLP, chase.MLP)
	}
	if chase.MLP > 2.5 {
		t.Errorf("single-chain mcf MLP %.2f unexpectedly high", chase.MLP)
	}
}

func TestROBScalingHelpsMemoryBound(t *testing.T) {
	s := workload.MustGenerate("libquantum", 50_000, 0)
	small := config.Reference()
	small.ROB = 32
	small.IQ = 16
	small.Name = "small-rob"
	big := config.Reference()
	big.ROB = 256
	big.IQ = 72
	big.Name = "big-rob"
	rs, err := Simulate(small, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Simulate(big, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rb.Cycles >= rs.Cycles {
		t.Errorf("bigger ROB not faster on streaming workload: %d vs %d", rb.Cycles, rs.Cycles)
	}
	if rb.MLP <= rs.MLP {
		t.Errorf("bigger ROB should expose more MLP: %.2f vs %.2f", rb.MLP, rs.MLP)
	}
}

func TestPrefetcherHelpsStreaming(t *testing.T) {
	s := workload.MustGenerate("libquantum", 50_000, 0)
	noPF, err := Simulate(config.Reference(), s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	withPF, err := Simulate(config.ReferenceWithPrefetcher(), s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if withPF.Cycles >= noPF.Cycles {
		t.Errorf("prefetcher did not help streaming workload: %d vs %d cycles", withPF.Cycles, noPF.Cycles)
	}
}

func TestDeterminism(t *testing.T) {
	a := simulate(t, "gcc", 30_000, Options{})
	b := simulate(t, "gcc", 30_000, Options{})
	if a.Cycles != b.Cycles || a.Stack != b.Stack {
		t.Errorf("simulation not deterministic: %d vs %d cycles", a.Cycles, b.Cycles)
	}
}

func TestWindowCycles(t *testing.T) {
	r := simulate(t, "gcc", 40_000, Options{WindowUops: 5_000})
	if len(r.WindowCycles) < 7 {
		t.Fatalf("expected ~8 windows, got %d", len(r.WindowCycles))
	}
	for i := 1; i < len(r.WindowCycles); i++ {
		if r.WindowCycles[i] <= r.WindowCycles[i-1] {
			t.Errorf("window cycles not increasing at %d", i)
		}
	}
	cpis := r.WindowCPI(5_000)
	for i, c := range cpis {
		if c <= 0 {
			t.Errorf("window %d CPI %.3f not positive", i, c)
		}
	}
}

func TestBranchyWorkloadShowsBranchComponent(t *testing.T) {
	r := simulate(t, "sjeng", 50_000, Options{})
	if r.Branches == 0 {
		t.Fatal("no branches in sjeng")
	}
	missRate := float64(r.BranchMispredicts) / float64(r.Branches)
	if missRate < 0.02 {
		t.Errorf("sjeng branch miss rate %.3f suspiciously low", missRate)
	}
	if r.Stack.Cycles[perf.BranchComp] == 0 {
		t.Error("no cycles attributed to branch component")
	}
}

func TestUopClassesAccounted(t *testing.T) {
	r := simulate(t, "povray", 30_000, Options{})
	var sum float64
	for _, c := range r.Activity.PerClass {
		sum += c
	}
	if int64(sum) != r.Uops {
		t.Errorf("per-class activity %d != uops %d", int64(sum), r.Uops)
	}
	if r.Activity.PerClass[trace.FPDiv] == 0 {
		t.Error("povray should execute FP divides")
	}
}

func TestSimulateContextCancel(t *testing.T) {
	s := workload.MustGenerate("mcf", 200_000, 0)

	// Pre-canceled: the run must abort with context.Canceled wrapped.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SimulateContext(ctx, config.Reference(), s, Options{})
	if err == nil {
		t.Fatal("SimulateContext with canceled ctx returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}

	// Expired deadline maps to DeadlineExceeded the same way.
	dctx, dcancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer dcancel()
	<-dctx.Done()
	if _, err := SimulateContext(dctx, config.Reference(), s, Options{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap context.DeadlineExceeded", err)
	}

	// A background context changes nothing: same result as Simulate.
	a, err := Simulate(config.Reference(), s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateContext(context.Background(), config.Reference(), s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Stack != b.Stack {
		t.Fatalf("SimulateContext diverged from Simulate: %d vs %d cycles", a.Cycles, b.Cycles)
	}
}
