// Command mipp-router fronts N mippd replicas with one /v1 surface:
// workload names are consistent-hashed over a bounded-load ring so each
// replica's predictor caches stay hot, search jobs stick to the replica
// running them, catalog reads merge every replica's answer, and streamed
// responses (SSE search events, NDJSON sweeps) relay frame-by-frame.
//
// Replicas should share one profile catalog — mippd -store on a shared
// directory, or mippd -remote-store pointed at a common daemon — so any
// replica answers any workload byte-identically and losing a replica only
// rehashes its workloads onto the survivors.
//
// Usage:
//
//	mipp-router -replicas http://host1:8091,http://host2:8091
//
//	curl localhost:8090/healthz           # ring membership + health
//	curl -d @predict.json localhost:8090/v1/predict
//
// SIGINT/SIGTERM drain in-flight requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mipp/obs"
	"mipp/router"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("mipp-router: ")
	var (
		addr       = flag.String("addr", ":8090", "listen address")
		replicas   = flag.String("replicas", "", "comma-separated mippd base URLs (required)")
		vnodes     = flag.Int("vnodes", router.DefaultVnodes, "virtual nodes per replica on the hash ring")
		loadFactor = flag.Float64("load-factor", router.DefaultLoadFactor, "bounded-load factor c (>1)")
		healthIv   = flag.Duration("health-interval", 2*time.Second, "replica health-check interval")
		failThresh = flag.Int("fail-threshold", 2, "consecutive failed health checks before a replica leaves rotation")
		debugAddr  = flag.String("debug-addr", "", "separate listener for /metrics and /debug/pprof/* (empty = disabled; /metrics is always on -addr too)")
	)
	flag.Parse()
	if *replicas == "" {
		log.Fatal("missing -replicas (comma-separated mippd base URLs)")
	}

	rt, err := router.New(router.Options{
		Replicas:      strings.Split(*replicas, ","),
		Vnodes:        *vnodes,
		LoadFactor:    *loadFactor,
		FailThreshold: *failThresh,
		Logger:        log.Default(),
	})
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rt.CheckHealth(ctx) // converge on reality before taking traffic
	go rt.HealthLoop(ctx, *healthIv)

	if *debugAddr != "" {
		// pprof stays off the service port: profiling endpoints never share
		// a listener with untrusted traffic.
		dbg := &http.Server{
			Addr:              *debugAddr,
			Handler:           obs.DebugHandler(rt.MetricsRegistry()),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			log.Printf("debug listener (metrics, pprof) on %s", *debugAddr)
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("debug listener: %v", err)
			}
		}()
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           rt,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() {
		log.Printf("routing %d replica(s) on %s", len(strings.Split(*replicas, ",")), *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Print("shutting down (draining in-flight requests)")
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("serve: %v", err)
	}
	log.Print("bye")
}
