package mipp

import (
	"context"
	"fmt"
	"sync"

	"mipp/api"
	"mipp/internal/core"
	"mipp/internal/power"
)

// BatchResult is the caller-owned result block of the batched prediction
// path: struct-of-arrays columns (one flat slice per quantity, held by the
// embedded core block) plus the facade's per-config state — resolved
// configurations, per-config validation errors and power stacks. Grown once
// by PredictBatchInto and reused across calls, so steady-state batched
// prediction allocates nothing.
//
// A BatchResult owns its memory: accessors that return pointers or slices
// alias buffers that the next PredictBatchInto (or Put back to a pool)
// overwrites, while Result materializes an independent copy. It is not safe
// for concurrent use, except that the sweep fan-out writes disjoint row
// ranges from multiple goroutines.
type BatchResult struct {
	n int
	// resolved[i] is the validated (possibly prefetcher-overridden)
	// configuration evaluated into row i, nil where errs[i] is set.
	resolved []*Config
	// copies backs the prefetcher-override copies so resolving does not
	// allocate; only grown when the predictor carries an override.
	copies []Config
	errs   []error
	power  []power.Stack
	core   core.BatchResult

	// row and fres are the reused gather rows behind fill; see Result for
	// the copying accessor.
	row  core.Result
	fres Result
}

// growSlice returns s resized to n, reusing its backing array when it is
// large enough and zeroing the returned prefix either way.
func growSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// Len returns the number of configuration slots.
func (br *BatchResult) Len() int { return br.n }

// Err returns slot i's validation error (nil for evaluated slots).
func (br *BatchResult) Err(i int) error { return br.errs[i] }

// Ok reports whether slot i holds a complete prediction: it validated and
// was evaluated before any cancellation.
func (br *BatchResult) Ok(i int) bool { return br.errs[i] == nil && br.core.Valid(i) }

// fill gathers slot i into the reused result row, aliasing the batch's
// MicroCPI storage. The pointer is valid until the next fill on br.
func (br *BatchResult) fill(i int) *Result {
	br.core.CopyResult(i, &br.row)
	br.fres = Result{
		Config:         br.row.Config,
		Workload:       br.row.Workload,
		FrequencyGHz:   br.resolved[i].FrequencyGHz,
		Cycles:         br.row.Cycles,
		Uops:           br.row.Uops,
		Instructions:   br.row.Instructions,
		Stack:          br.row.Stack,
		Activity:       br.row.Activity,
		Power:          br.power[i],
		Deff:           br.row.Deff,
		MLP:            br.row.MLP,
		BranchMissRate: br.row.BranchMissRate,
		MicroCPI:       br.row.MicroCPI,
	}
	return &br.fres
}

// Result materializes slot i as a standalone *Result, byte-identical to
// what Predict would have returned for the same configuration, or nil when
// the slot is not Ok.
func (br *BatchResult) Result(i int) *Result {
	if !br.Ok(i) {
		return nil
	}
	out := *br.fill(i)
	out.MicroCPI = make([]float64, len(br.row.MicroCPI))
	copy(out.MicroCPI, br.row.MicroCPI)
	return &out
}

// apiResult lowers slot i to the wire DTO. The DTO is an independent copy
// (apiResult copies MicroCPI when requested), so it may be published while
// br's buffers are reused.
func (br *BatchResult) apiResult(i int, withMicroCPI bool) *api.Result {
	return apiResult(br.fill(i), withMicroCPI)
}

// release drops the references a reused BatchResult pins — configurations,
// errors, name strings — keeping the numeric columns' capacity.
func (br *BatchResult) release() {
	clear(br.resolved[:cap(br.resolved)])
	clear(br.copies[:cap(br.copies)])
	clear(br.errs[:cap(br.errs)])
	br.core.Release()
	br.n = 0
}

// batchResultPool recycles the batch blocks behind the compatibility paths
// (PredictBatch, Sweep, the Engine surfaces), so those too run allocation-
// light without every call site owning a buffer.
var batchResultPool = sync.Pool{New: func() any { return new(BatchResult) }}

// maxPooledRows bounds the row capacity a BatchResult may carry back into
// the pool: one huge sweep must not pin its columns for the process
// lifetime.
const maxPooledRows = 1 << 15

func getBatchResult() *BatchResult { return batchResultPool.Get().(*BatchResult) }

func putBatchResult(br *BatchResult) {
	if cap(br.resolved) > maxPooledRows {
		return
	}
	br.release()
	batchResultPool.Put(br)
}

// prepareBatch sizes br for n configurations predicted by pd.
func (pd *Predictor) prepareBatch(br *BatchResult, n int) {
	pd.compiled.PrepareBatch(&br.core, n)
	br.n = n
	br.resolved = growSlice(br.resolved, n)
	br.errs = growSlice(br.errs, n)
	br.power = growSlice(br.power, n)
	if pd.prefetcher != nil {
		br.copies = growSlice(br.copies, n)
	}
}

// resolveRange validates configs into br's slots [off, off+len(configs)),
// applying the predictor's prefetcher override without allocating (the
// copies land in br's backing column).
//
//mipp:hotpath
func (pd *Predictor) resolveRange(configs []*Config, br *BatchResult, off int) {
	for i, cfg := range configs {
		j := off + i
		if cfg == nil {
			br.errs[j] = fmt.Errorf("mipp: Predict: nil config") //mipp:allow hotpath cold per-item failure path
			continue
		}
		c := cfg
		if pd.prefetcher != nil && c.Prefetcher.Enabled != *pd.prefetcher {
			br.copies[j] = *cfg
			br.copies[j].Prefetcher.Enabled = *pd.prefetcher
			c = &br.copies[j]
		}
		if err := c.Validate(); err != nil {
			br.errs[j] = fmt.Errorf("mipp: Predict: %w", err) //mipp:allow hotpath cold per-item failure path
			continue
		}
		br.resolved[j] = c
	}
}

// finishRange attaches the power estimate to every evaluated slot in
// [lo, hi).
//
//mipp:hotpath
func (pd *Predictor) finishRange(br *BatchResult, lo, hi int) {
	for i := lo; i < hi; i++ {
		if br.errs[i] != nil || !br.core.Valid(i) {
			continue
		}
		br.power[i] = power.Estimate(br.resolved[i], br.core.ActivityAt(i))
	}
}

// PredictBatchInto is the allocation-free batched prediction entry point:
// it sizes br for configs (reusing its buffers across calls) and evaluates
// every configuration in input order on one pooled kernel, so steady-state
// generations — a search strategy's, a sweep window's — assemble results
// with zero allocations. Row i always corresponds to configs[i]:
// br.Err(i) is non-nil exactly where the configuration failed validation (a
// bad configuration skips its slot, it does not abort the batch), and
// br.Result(i) is byte-identical to what Predict(configs[i]) returns.
//
// Every configuration is validated up front; the context is then polled
// every few configurations during evaluation (see core.CtxCheckStride), so
// cancellation inside a large batch is observed promptly. On cancellation
// the rows evaluated so far keep their values, the rest are not Ok, and
// ctx.Err() is returned. Unlike Predict, PredictBatchInto with one br is
// not safe for concurrent use — br is the whole point of the call; use one
// BatchResult per goroutine (or PredictBatch, which pools them).
func (pd *Predictor) PredictBatchInto(ctx context.Context, configs []*Config, br *BatchResult) error {
	// Two atomic adds are the whole cost of instrumenting the hot path: the
	// package-level counters live on obs.Default() and allocate nothing.
	kernelBatches.Inc()
	kernelConfigs.Add(uint64(len(configs)))
	pd.prepareBatch(br, len(configs))
	pd.resolveRange(configs, br, 0)
	err := pd.compiled.EvaluateRangeInto(ctx, br.resolved, &br.core, 0)
	pd.finishRange(br, 0, len(configs))
	return err
}
