package server

// Streaming and replication handler edge cases not covered by the
// engine-level and router-level integration tests: bad ?stream values,
// bad resume tokens, and the storeless daemon's /v1/store 404s.

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestSweepStreamParamValidation(t *testing.T) {
	body := `{"schema_version":1,"workload":"mcf","configs":[{"name":"reference"}]}`
	rec := serve(t, "POST", "/v1/sweep?stream=yes", body)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("stream=yes: %d %s", rec.Code, rec.Body)
	}
	rec = serve(t, "POST", "/v1/sweep?stream=1", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("stream=1: %d %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content type %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) != 3 { // header, one item, trailer
		t.Errorf("stream framed %d lines, want 3:\n%s", len(lines), rec.Body)
	}
	// A pre-admission failure must answer with the JSON envelope, not a
	// truncated stream.
	rec = serve(t, "POST", "/v1/sweep?stream=1",
		`{"schema_version":1,"workload":"nope","configs":[{"name":"reference"}]}`)
	if rec.Code != http.StatusNotFound || !strings.Contains(rec.Body.String(), `"error"`) {
		t.Errorf("unknown workload stream: %d %s", rec.Code, rec.Body)
	}
}

func TestSearchEventsParamValidation(t *testing.T) {
	rec := serve(t, "GET", "/v1/search/job-x-1/events?after=banana", "")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad after: %d %s", rec.Code, rec.Body)
	}
	rec = serve(t, "GET", "/v1/search/job-x-1/events", "")
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown job events: %d %s", rec.Code, rec.Body)
	}
}

func TestStoreEndpointsWithoutStore(t *testing.T) {
	// The shared test engine is storeless: every /v1/store route must 404
	// with the configuration hint, so a misdirected peer fails loudly.
	for _, req := range []struct{ method, path string }{
		{"GET", "/v1/store/index"},
		{"GET", "/v1/store/objects/sha256:00"},
		{"PUT", "/v1/store/objects/sha256:00?name=x"},
		{"DELETE", "/v1/store/objects/sha256:00"},
	} {
		rec := serve(t, req.method, req.path, "")
		if rec.Code != http.StatusNotFound || !strings.Contains(rec.Body.String(), "-store") {
			t.Errorf("%s %s without a store: %d %s", req.method, req.path, rec.Code, rec.Body)
		}
	}
}

func TestRequestIDAssignedAndEchoed(t *testing.T) {
	srv := New(testEngine(t))
	req := httptest.NewRequest("GET", "/healthz", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rid := rec.Header().Get("X-Request-Id"); rid == "" {
		t.Error("no X-Request-Id assigned")
	}
	req = httptest.NewRequest("GET", "/healthz", nil)
	req.Header.Set("X-Request-Id", "caller-chosen-id")
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rid := rec.Header().Get("X-Request-Id"); rid != "caller-chosen-id" {
		t.Errorf("echoed rid %q, want the caller's", rid)
	}
}
