// Package obs is the observability layer of the mipp serving tier:
// lock-free metric instruments (counters, gauges, fixed-bucket histograms),
// a registry that renders them in the Prometheus text exposition format on
// GET /metrics, and lightweight log-based trace spans extending the
// X-Request-Id plumbing across process hops.
//
// The package is deliberately stdlib-only and allocation-free on the hot
// path: instruments are plain structs whose Add/Inc/Set/Observe methods are
// single atomic operations (a histogram Observe is one atomic bucket
// increment plus one CAS on the float64 bits of the sum), so the batched
// evaluation kernel's 0 allocs/config budget survives instrumentation.
// Construction and registration, by contrast, allocate freely and must
// happen once at startup — never inside //mipp:hotpath functions or loops;
// the mipplint obshygiene analyzer enforces exactly that.
//
// Clock reads live here on purpose: packages under the determinism lint
// scope (mipp, mipp/store, ...) time their stages through StartTimer and
// StartSpan instead of calling time.Now themselves, keeping the model
// packages free of direct clock access.
package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64. The zero value is ready to
// use; Inc and Add are single atomic adds, safe from any goroutine.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 that can go up and down (in-flight requests, resident
// bytes, evals/s). The zero value is ready to use. Set is a single atomic
// store; Add is a CAS loop over the float bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta and returns the new value (the return lets admission-style
// callers do "claim then check" without a second load).
func (g *Gauge) Add(delta float64) float64 {
	for {
		old := g.bits.Load()
		next := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(next)) {
			return next
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets chosen at construction.
// Observe is lock-free: a linear scan over the (small, sorted) bounds, one
// atomic bucket increment, and one CAS on the sum — no allocation. Bucket
// counts render cumulatively (Prometheus le= semantics) at scrape time, so
// the write path never touches more than one bucket.
type Histogram struct {
	bounds []float64       // sorted upper bounds; +Inf bucket is implicit
	counts []atomic.Uint64 // len(bounds)+1; counts[i] observations in (bounds[i-1], bounds[i]]
	sum    atomic.Uint64   // float64 bits of the running sum
}

// NewHistogram returns a histogram over the given upper bounds (sorted
// copies; the implicit +Inf bucket is always present). Call it once at
// startup — construction allocates.
func NewHistogram(bounds ...float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{
		bounds: bs,
		counts: make([]atomic.Uint64, len(bs)+1),
	}
}

// DefBuckets are the default latency buckets, in seconds: 100µs to ~100s in
// roughly 3× steps — wide enough for both a microsecond predict and a
// minutes-long search generation.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 100,
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64frombits(old) + v
		if h.sum.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Timer measures a duration for histogram observation. The clock read is
// owned by this package so deterministic-scoped packages never call
// time.Now themselves.
type Timer struct {
	t0 time.Time
}

// StartTimer starts a timer.
func StartTimer() Timer { return Timer{t0: time.Now()} }

// Seconds returns the elapsed time in seconds.
func (t Timer) Seconds() float64 { return time.Since(t.t0).Seconds() }

// ObserveInto records the elapsed seconds into h (nil-safe) and returns the
// elapsed seconds.
func (t Timer) ObserveInto(h *Histogram) float64 {
	s := t.Seconds()
	if h != nil {
		h.Observe(s)
	}
	return s
}
