package mipp_test

// Tests for the Results convenience type: helper forwarding and the CSV
// exporter.

import (
	"context"
	"encoding/csv"
	"strconv"
	"strings"
	"testing"

	"mipp"
	"mipp/arch"
)

func TestResultsHelpersAndCSV(t *testing.T) {
	pred, err := mipp.NewPredictor(testProfile(t, "h264ref"))
	if err != nil {
		t.Fatal(err)
	}
	configs := arch.DesignSpaceSample(27)
	results, err := mipp.Sweep(context.Background(), pred, configs)
	if err != nil {
		t.Fatal(err)
	}

	// Forwarders agree with the package-level helpers.
	points := results.Points()
	if len(points) != len(configs) {
		t.Fatalf("Points: %d, want %d", len(points), len(configs))
	}
	if got, want := results.ParetoFront(), mipp.ParetoFront(points); len(got) != len(want) {
		t.Errorf("ParetoFront forwarding: %d vs %d points", len(got), len(want))
	}
	if got, ok := results.BestByED2P(); !ok {
		t.Error("BestByED2P found nothing")
	} else if want, _ := mipp.BestByED2P(points); got != want {
		t.Errorf("BestByED2P forwarding: %+v != %+v", got, want)
	}
	if _, ok := results.BestUnderPowerCap(0); ok {
		t.Error("BestUnderPowerCap(0) found a point")
	}

	// CSV export: header + one row per result, nil entries skipped,
	// numeric fields parseable and consistent with the results.
	withNil := append(mipp.Results{nil}, results...)
	var buf strings.Builder
	if err := withNil.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatalf("exported CSV does not parse: %v", err)
	}
	if len(rows) != 1+len(results) {
		t.Fatalf("CSV has %d rows, want header + %d", len(rows), len(results))
	}
	header := rows[0]
	col := func(name string) int {
		for i, h := range header {
			if h == name {
				return i
			}
		}
		t.Fatalf("CSV header missing %q: %v", name, header)
		return -1
	}
	iConfig, iCycles, iWatts := col("config"), col("cycles"), col("watts")
	for i, r := range results {
		row := rows[i+1]
		if row[iConfig] != r.Config {
			t.Errorf("row %d config = %q, want %q", i, row[iConfig], r.Config)
		}
		cycles, err := strconv.ParseFloat(row[iCycles], 64)
		if err != nil || cycles != r.Cycles {
			t.Errorf("row %d cycles = %q, want %v", i, row[iCycles], r.Cycles)
		}
		watts, err := strconv.ParseFloat(row[iWatts], 64)
		if err != nil || watts != r.Watts() {
			t.Errorf("row %d watts = %q, want %v", i, row[iWatts], r.Watts())
		}
	}
}
