package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"mipp/api"
	"mipp/obs"
)

// The streaming consumers: iterator-style wrappers over the daemon's two
// streamed responses. Both follow the same protocol whether the peer is
// one mippd or a mipp-router fronting several.

// setRequestID stamps the X-Request-Id header: the context's id when the
// caller put one there with api.ContextWithRequestID, a fresh one
// otherwise — so every hop of a distributed call logs the same rid. When
// the caller is inside a trace span (obs.StartSpan), its span ID rides the
// X-Span-Id header too, so the server's spans nest under the caller's.
func setRequestID(req *http.Request) {
	rid := api.RequestIDFromContext(req.Context())
	if rid == "" {
		rid = api.NewRequestID()
	}
	req.Header.Set(api.RequestIDHeader, rid)
	if sp := obs.SpanFromContext(req.Context()); sp != nil {
		req.Header.Set(api.SpanIDHeader, sp.ID)
	}
}

// SweepStream is an in-flight streamed sweep. Call Next until it returns
// io.EOF, then Trailer for the run's counts; always Close.
type SweepStream struct {
	resp    *http.Response
	dec     *json.Decoder
	header  api.SweepStreamHeader
	trailer *api.SweepStreamTrailer
}

// SweepStream runs req as POST /v1/sweep?stream=1 and returns the item
// iterator. Request-level failures (bad request, unknown workload) are
// returned here as *RemoteError, exactly like Sweep.
func (c *Client) SweepStream(ctx context.Context, req *api.SweepRequest) (*SweepStream, error) {
	data, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("client: encode sweep request: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.baseURL+"/v1/sweep?stream=1", bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("client: /v1/sweep: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	setRequestID(hreq)
	hresp, err := c.http.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("client: /v1/sweep: %w", err)
	}
	if hresp.StatusCode/100 != 2 {
		defer func() {
			_, _ = io.Copy(io.Discard, hresp.Body)
			hresp.Body.Close()
		}()
		var env api.ErrorResponse
		msg := hresp.Status
		if err := json.NewDecoder(hresp.Body).Decode(&env); err == nil && env.Error != "" {
			msg = env.Error
		}
		return nil, &RemoteError{Status: hresp.StatusCode, Message: msg}
	}
	s := &SweepStream{resp: hresp, dec: json.NewDecoder(hresp.Body)}
	if err := s.dec.Decode(&s.header); err != nil {
		hresp.Body.Close()
		return nil, fmt.Errorf("client: decode sweep stream header: %w", err)
	}
	if err := api.CheckVersion(s.header.SchemaVersion); err != nil {
		hresp.Body.Close()
		return nil, fmt.Errorf("client: sweep stream: %w", err)
	}
	return s, nil
}

// Header returns the stream's opening frame: the workload and how many
// items will follow.
func (s *SweepStream) Header() api.SweepStreamHeader { return s.header }

// Next returns the next configuration's item, io.EOF after a clean
// trailer, or the error that truncated the stream (a trailer carrying a
// run-level error — e.g. cancellation — surfaces as that error).
func (s *SweepStream) Next() (*api.SweepItem, error) {
	// Item and trailer frames are distinguished by the trailer's
	// always-present "done" field, which no item carries.
	var frame struct {
		Index  int         `json:"index"`
		Config string      `json:"config"`
		Result *api.Result `json:"result"`
		Error  string      `json:"error"`

		Done    *bool `json:"done"`
		Results int   `json:"results"`
		Errors  int   `json:"errors"`
	}
	if err := s.dec.Decode(&frame); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, fmt.Errorf("client: sweep stream ended without a trailer")
		}
		return nil, fmt.Errorf("client: decode sweep stream frame: %w", err)
	}
	if frame.Done != nil {
		s.trailer = &api.SweepStreamTrailer{
			Done:    *frame.Done,
			Results: frame.Results,
			Errors:  frame.Errors,
			Error:   frame.Error,
		}
		if frame.Error != "" {
			return nil, fmt.Errorf("client: sweep stream truncated: %s", frame.Error)
		}
		return nil, io.EOF
	}
	return &api.SweepItem{Index: frame.Index, Config: frame.Config, Result: frame.Result, Error: frame.Error}, nil
}

// Trailer returns the closing frame, once Next has returned io.EOF (nil
// before that).
func (s *SweepStream) Trailer() *api.SweepStreamTrailer { return s.trailer }

// Close releases the stream. Closing mid-stream aborts the connection
// rather than draining it — the server sees the disconnect and stops the
// sweep.
func (s *SweepStream) Close() error {
	return s.resp.Body.Close()
}

// SearchEventStream is a live subscription to one search job's events.
// Call Next until an event's Terminal() is true (the server then ends the
// stream and Next returns io.EOF); always Close.
type SearchEventStream struct {
	resp *http.Response
	br   *bufio.Reader
	// LastSeq is the Seq of the last event delivered — the value to pass
	// as after when resuming a dropped stream.
	LastSeq int
}

// SearchEvents subscribes to GET /v1/search/{id}/events. Events with
// Seq ≤ after are skipped (pass 0 for the full retained history; pass a
// previous stream's LastSeq to resume without loss). A finished job
// replays its retained events and ends the stream immediately.
func (c *Client) SearchEvents(ctx context.Context, id string, after int) (*SearchEventStream, error) {
	u := c.baseURL + "/v1/search/" + url.PathEscape(id) + "/events"
	if after > 0 {
		u += "?after=" + fmt.Sprint(after)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, fmt.Errorf("client: search events: %w", err)
	}
	hreq.Header.Set("Accept", "text/event-stream")
	setRequestID(hreq)
	hresp, err := c.http.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("client: search events: %w", err)
	}
	if hresp.StatusCode/100 != 2 {
		defer func() {
			_, _ = io.Copy(io.Discard, hresp.Body)
			hresp.Body.Close()
		}()
		var env api.ErrorResponse
		msg := hresp.Status
		if err := json.NewDecoder(hresp.Body).Decode(&env); err == nil && env.Error != "" {
			msg = env.Error
		}
		return nil, &RemoteError{Status: hresp.StatusCode, Message: msg}
	}
	return &SearchEventStream{resp: hresp, br: bufio.NewReader(hresp.Body)}, nil
}

// Next returns the next event, or io.EOF when the server ends the stream
// (after the terminal event).
func (s *SearchEventStream) Next() (*api.SearchEvent, error) {
	var data []byte
	for {
		line, err := s.br.ReadString('\n')
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil, io.EOF
			}
			return nil, fmt.Errorf("client: read event stream: %w", err)
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "":
			if len(data) == 0 {
				continue // stray separator or comment-only message
			}
			ev := &api.SearchEvent{}
			if err := json.Unmarshal(data, ev); err != nil {
				return nil, fmt.Errorf("client: decode search event: %w", err)
			}
			if err := api.CheckVersion(ev.SchemaVersion); err != nil {
				return nil, fmt.Errorf("client: search event: %w", err)
			}
			s.LastSeq = ev.Seq
			return ev, nil
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " ")...)
		default:
			// id:/event: lines duplicate fields inside the data payload;
			// comments (":") keep the connection alive. All skippable.
		}
	}
}

// Close releases the subscription. Safe mid-stream: the server observes
// the disconnect and drops the subscriber.
func (s *SearchEventStream) Close() error {
	return s.resp.Body.Close()
}
