// Command fidelityjson measures the analytical model against the
// cycle-level reference simulator over the full 243-point design space and
// writes the result as a deterministic JSON artifact (FIDELITY_pr10.json),
// so CI can both archive the accuracy trajectory next to the BENCH_*.json
// perf records and fail the build when model fidelity regresses.
//
// Usage:
//
//	go run ./internal/tools/fidelityjson -out FIDELITY_pr10.json \
//	    -workloads mcf,gcc -uops 40000 -max-mape 12
//
// For each workload the tool profiles the generated trace once, then runs
// both the predictor and the simulator on every design-space configuration,
// feeding the (model, simulator) pairs through the same fidelity.Recorder
// the serving tier aggregates — the artifact is the fidelity.Report itself
// plus the run parameters. Everything is a pure function of (workloads,
// uops, seed): no timestamps, no host identity, so the checked-in file
// reproduces byte-identically on any machine.
//
// -max-mape fails the run (exit 1) when the overall CPI MAPE exceeds the
// threshold; -max-watts-mape does the same for power. The thresholds are
// the accuracy floor of the paper reproduction: the interval model tracks
// the OoO reference within low-double-digit percent across the space.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"

	"mipp"
	"mipp/arch"
	"mipp/fidelity"
)

type artifact struct {
	SchemaVersion int    `json:"schema_version"`
	PR            int    `json:"pr"`
	Note          string `json:"note,omitempty"`
	// Params pin the inputs the report is a pure function of.
	Params struct {
		Workloads []string `json:"workloads"`
		Uops      int      `json:"uops"`
		Seed      int64    `json:"seed"`
		Configs   int      `json:"configs"`
	} `json:"params"`
	Report   *fidelity.Report `json:"report"`
	Failures []string         `json:"gate_failures,omitempty"`
}

func main() {
	var (
		out       = flag.String("out", "", "output file (empty = stdout only)")
		workloads = flag.String("workloads", "mcf,gcc", "comma-separated workloads to measure")
		uops      = flag.Int("uops", 40_000, "trace length in micro-ops (profiler and simulator see the same stream)")
		seed      = flag.Int64("seed", 0, "workload generation seed")
		worstN    = flag.Int("worst", 10, "worst-offender configs to record in the report")
		maxMAPE   = flag.Float64("max-mape", 0, "fail when overall CPI MAPE (percent) exceeds this (0 = no gate)")
		maxWatts  = flag.Float64("max-watts-mape", 0, "fail when overall power MAPE (percent) exceeds this (0 = no gate)")
		pr        = flag.Int("pr", 10, "PR number recorded in the artifact")
		note      = flag.String("note", "model-vs-simulator residuals over the 243-point design space", "free-text note recorded in the artifact")
	)
	flag.Parse()

	names := strings.Split(*workloads, ",")
	configs := arch.DesignSpace()
	rec := fidelity.NewRecorder()

	type task struct {
		workload string
		pd       *mipp.Predictor
		stream   *mipp.Stream
		cfg      *arch.Config
	}
	tasks := make([]task, 0, len(names)*len(configs))
	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		p, err := mipp.NewProfiler().Profile(name, *uops)
		if err != nil {
			fatal(err)
		}
		pd, err := mipp.NewPredictor(p)
		if err != nil {
			fatal(err)
		}
		stream, err := mipp.GenerateWorkload(name, *uops, *seed)
		if err != nil {
			fatal(err)
		}
		for _, cfg := range configs {
			tasks = append(tasks, task{name, pd, stream, cfg})
		}
	}

	// The recorder dedupes by digest and folds canonically, so any worker
	// count and completion order yields the same report bytes.
	var wg sync.WaitGroup
	ch := make(chan task)
	var mu sync.Mutex
	var errs []string
	for w := 0; w < runtime.GOMAXPROCS(0); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range ch {
				if err := run(rec, t.workload, t.pd, t.stream, t.cfg); err != nil {
					mu.Lock()
					errs = append(errs, err.Error())
					mu.Unlock()
				}
			}
		}()
	}
	for _, t := range tasks {
		ch <- t
	}
	close(ch)
	wg.Wait()
	if len(errs) > 0 {
		sort.Strings(errs)
		fatal(fmt.Errorf("%d evaluation(s) failed, first: %s", len(errs), errs[0]))
	}

	var a artifact
	a.SchemaVersion = 1
	a.PR = *pr
	a.Note = *note
	a.Params.Workloads = names
	a.Params.Uops = *uops
	a.Params.Seed = *seed
	a.Params.Configs = len(configs)
	rep := rec.Report(*worstN)
	a.Report = &rep

	if *maxMAPE > 0 && a.Report.CPI.MAPEPct > *maxMAPE {
		a.Failures = append(a.Failures, fmt.Sprintf(
			"cpi mape %.2f%% exceeds gate %.2f%%", a.Report.CPI.MAPEPct, *maxMAPE))
	}
	if *maxWatts > 0 && a.Report.Watts.MAPEPct > *maxWatts {
		a.Failures = append(a.Failures, fmt.Sprintf(
			"watts mape %.2f%% exceeds gate %.2f%%", a.Report.Watts.MAPEPct, *maxWatts))
	}

	data, err := json.MarshalIndent(&a, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatal(err)
		}
	}
	os.Stdout.Write(data)
	if len(a.Failures) > 0 {
		fatal(fmt.Errorf("fidelity gate failed: %s", strings.Join(a.Failures, "; ")))
	}
}

// run evaluates one (workload, config) pair on both sides of the seam and
// records the residual.
func run(rec *fidelity.Recorder, workload string, pd *mipp.Predictor, stream *mipp.Stream, cfg *arch.Config) error {
	model, err := pd.Predict(cfg)
	if err != nil {
		return fmt.Errorf("%s/%s: predict: %w", workload, cfg.Name, err)
	}
	sim, err := mipp.Simulate(cfg, stream, mipp.SimOptions{})
	if err != nil {
		return fmt.Errorf("%s/%s: simulate: %w", workload, cfg.Name, err)
	}
	rec.Record(fidelity.Pair{
		Workload: workload,
		Config:   cfg.Name,
		Digest:   fidelity.Digest(workload, "", cfg),
		Model:    mipp.ModelMeasurement(model),
		Sim:      mipp.SimMeasurement(cfg, sim),
	})
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fidelityjson:", err)
	os.Exit(1)
}
