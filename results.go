package mipp

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// Results is a batch of predictions, as returned by Sweep. It forwards the
// design-space helpers so callers go straight from a sweep to a decision,
// and exports to CSV so commands and examples stop hand-rolling output
// loops. Nil entries (failed items in partially-failed batches) are
// skipped everywhere.
type Results []*Result

// Points projects the results onto the (time, power) plane.
func (rs Results) Points() []Point { return Points(rs) }

// ParetoFront returns the non-dominated subset of the results' points,
// sorted by time.
func (rs Results) ParetoFront() []Point { return ParetoFront(rs.Points()) }

// BestUnderPowerCap returns the fastest result whose power does not exceed
// capWatts; ok is false when nothing fits.
func (rs Results) BestUnderPowerCap(capWatts float64) (Point, bool) {
	return BestUnderPowerCap(rs.Points(), capWatts)
}

// BestByED2P returns the result minimizing energy-delay-squared, the DVFS
// selection metric of §7.3.
func (rs Results) BestByED2P() (Point, bool) { return BestByED2P(rs.Points()) }

// csvHeader names the WriteCSV columns, one row per result.
var csvHeader = []string{
	"workload", "config", "frequency_ghz",
	"cycles", "instructions", "uops", "cpi", "time_seconds",
	"cpi_base", "cpi_branch", "cpi_icache", "cpi_llc", "cpi_dram",
	"watts", "energy_joules", "edp", "ed2p",
	"deff", "mlp", "branch_miss_rate",
}

// WriteCSV writes one header row plus one row per (non-nil) result: names,
// cycle and CPI-stack columns, power and the derived energy metrics.
func (rs Results) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("mipp: write csv header: %w", err)
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, r := range rs {
		if r == nil {
			continue
		}
		row := []string{
			r.Workload, r.Config, f(r.FrequencyGHz),
			f(r.Cycles), f(r.Instructions), f(r.Uops), f(r.CPI()), f(r.TimeSeconds()),
			f(r.Stack.Cycles[CPIBase]), f(r.Stack.Cycles[CPIBranch]), f(r.Stack.Cycles[CPIICache]),
			f(r.Stack.Cycles[CPILLCHit]), f(r.Stack.Cycles[CPIDRAM]),
			f(r.Watts()), f(r.EnergyJoules()), f(r.EDP()), f(r.ED2P()),
			f(r.Deff), f(r.MLP), f(r.BranchMissRate),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("mipp: write csv row for %s/%s: %w", r.Workload, r.Config, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
