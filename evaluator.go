package mipp

import (
	"context"
	"errors"

	"mipp/api"
)

// Evaluator is the service surface of the model: everything needed to
// register workload profiles and answer (workload, configuration)
// evaluation queries, expressed entirely in the versioned wire DTOs of
// mipp/api.
//
// Two symmetric implementations exist: *Engine evaluates in-process, and
// mipp/client.Client forwards to a mippd daemon over HTTP. Because both
// speak the same DTOs, a sweep answered locally and the same sweep answered
// remotely marshal to byte-identical JSON — callers swap one for the other
// without code changes.
type Evaluator interface {
	// RegisterProfile installs a workload profile: either an inline
	// versioned profile envelope or a built-in workload profiled
	// server-side. Store-backed engines persist it durably.
	RegisterProfile(ctx context.Context, req *api.RegisterProfileRequest) (*api.RegisterProfileResponse, error)
	// Workloads lists the registered profiles, sorted by name.
	Workloads(ctx context.Context) (*api.WorkloadsResponse, error)
	// ProfileInfo returns one registered profile's metadata — canonical
	// digest, size, summary counters and residency.
	ProfileInfo(ctx context.Context, name string) (*api.ProfileInfoResponse, error)
	// DeleteProfile drops a registered profile (durably, when the
	// implementation is store-backed) and its cached predictors.
	DeleteProfile(ctx context.Context, name string) (*api.DeleteProfileResponse, error)
	// Predict evaluates one (workload, configuration) pair.
	Predict(ctx context.Context, req *api.PredictRequest) (*api.PredictResponse, error)
	// Sweep evaluates one workload over many configurations with
	// per-config error reporting.
	Sweep(ctx context.Context, req *api.SweepRequest) (*api.SweepResponse, error)
	// Evaluate answers a workloads × configurations batch with per-item
	// error reporting — the engine's native unit of work.
	Evaluate(ctx context.Context, req *api.BatchRequest) (*api.BatchResponse, error)
	// Pareto sweeps one workload and extracts design decisions: the
	// Pareto frontier, the fastest design under a power cap, and the
	// ED²P optimum.
	Pareto(ctx context.Context, req *api.ParetoRequest) (*api.ParetoResponse, error)
}

// Errors the service layer maps onto HTTP statuses. Implementations wrap
// them, so test with errors.Is.
var (
	// ErrUnknownWorkload reports a query against a name with no
	// registered profile (HTTP 404).
	ErrUnknownWorkload = errors.New("mipp: unknown workload")
	// ErrBadRequest reports a structurally invalid request: bad schema
	// version, unresolvable config spec, unknown option name (HTTP 400).
	ErrBadRequest = errors.New("mipp: bad request")
	// ErrBusy reports admission refusal under load — too many search
	// jobs in flight (HTTP 429); the request is valid, retry later.
	ErrBusy = errors.New("mipp: busy")
)
