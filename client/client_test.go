package client_test

// Client ↔ server round-trip tests: the acceptance criterion that a sweep
// issued through mipp/client against a running server returns byte-identical
// JSON to the same sweep run through the in-process mipp.Engine, exercised
// through the shared mipp.Evaluator interface — plus a concurrent round-trip
// for the race detector and the error taxonomy over the wire.

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"mipp"
	"mipp/api"
	"mipp/arch"
	"mipp/client"
	"mipp/server"
)

const testUops = 30_000

// harness is one engine served over loopback HTTP with a client pointed at
// it: the two Evaluators the equivalence tests compare.
type harness struct {
	engine *mipp.Engine
	remote *client.Client
}

var harnessOnce struct {
	sync.Once
	h   *harness
	srv *httptest.Server
	err error
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	harnessOnce.Do(func() {
		engine := mipp.NewEngine()
		p, err := mipp.NewProfiler().Profile("mcf", testUops)
		if err != nil {
			harnessOnce.err = err
			return
		}
		if err := engine.Register("mcf", p); err != nil {
			harnessOnce.err = err
			return
		}
		harnessOnce.srv = httptest.NewServer(server.New(engine))
		harnessOnce.h = &harness{
			engine: engine,
			remote: client.New(harnessOnce.srv.URL),
		}
	})
	if harnessOnce.err != nil {
		t.Fatal(harnessOnce.err)
	}
	return harnessOnce.h
}

// evaluators returns both sides of the interface under their shared type.
func (h *harness) evaluators() map[string]mipp.Evaluator {
	return map[string]mipp.Evaluator{"local": h.engine, "remote": h.remote}
}

// TestSweepByteIdentical is the acceptance criterion: same sweep, two
// evaluators, identical bytes.
func TestSweepByteIdentical(t *testing.T) {
	h := newHarness(t)
	req := &api.SweepRequest{
		SchemaVersion: api.SchemaVersion,
		Workload:      "mcf",
		Space:         &api.SpaceSpec{Kind: "design", Stride: 13},
		Configs:       []api.ConfigSpec{{Name: "reference"}, {Name: "lowpower"}},
	}
	got := map[string][]byte{}
	for name, ev := range h.evaluators() {
		resp, err := ev.Sweep(context.Background(), req)
		if err != nil {
			t.Fatalf("%s sweep: %v", name, err)
		}
		if len(resp.Results) != 21 || len(resp.Errors) != 0 {
			t.Fatalf("%s sweep: %d results, %d errors", name, len(resp.Results), len(resp.Errors))
		}
		data, err := json.Marshal(resp)
		if err != nil {
			t.Fatal(err)
		}
		got[name] = data
	}
	if string(got["local"]) != string(got["remote"]) {
		t.Errorf("local and remote sweep JSON differ:\nlocal:  %.300s\nremote: %.300s", got["local"], got["remote"])
	}
}

// TestEvaluatorParity runs every query type through both evaluators and
// compares the marshaled responses.
func TestEvaluatorParity(t *testing.T) {
	h := newHarness(t)
	ctx := context.Background()
	capW := 18.0
	queries := []struct {
		name string
		call func(ev mipp.Evaluator) (any, error)
	}{
		{"workloads", func(ev mipp.Evaluator) (any, error) { return ev.Workloads(ctx) }},
		{"predict", func(ev mipp.Evaluator) (any, error) {
			return ev.Predict(ctx, &api.PredictRequest{SchemaVersion: api.SchemaVersion,
				Workload: "mcf", Config: api.ConfigSpec{Name: "reference"}, MicroCPI: true})
		}},
		{"evaluate", func(ev mipp.Evaluator) (any, error) {
			return ev.Evaluate(ctx, &api.BatchRequest{SchemaVersion: api.SchemaVersion,
				Workloads: []string{"mcf", "mcf"}, Space: &api.SpaceSpec{Kind: "dvfs"}})
		}},
		{"pareto", func(ev mipp.Evaluator) (any, error) {
			return ev.Pareto(ctx, &api.ParetoRequest{SchemaVersion: api.SchemaVersion,
				Workload: "mcf", Space: &api.SpaceSpec{Kind: "design", Stride: 27}, CapWatts: &capW})
		}},
	}
	for _, q := range queries {
		t.Run(q.name, func(t *testing.T) {
			var blobs [][]byte
			for name, ev := range map[string]mipp.Evaluator{"local": h.engine, "remote": h.remote} {
				resp, err := q.call(ev)
				if err != nil {
					t.Fatalf("%s %s: %v", name, q.name, err)
				}
				data, err := json.Marshal(resp)
				if err != nil {
					t.Fatal(err)
				}
				blobs = append(blobs, data)
			}
			if string(blobs[0]) != string(blobs[1]) {
				t.Errorf("%s responses differ:\n%.300s\n%.300s", q.name, blobs[0], blobs[1])
			}
		})
	}
}

// TestConcurrentRoundTrip hammers both evaluators from many goroutines —
// meaningful under -race: it exercises the predictor cache, the worker
// pool and the HTTP path concurrently.
func TestConcurrentRoundTrip(t *testing.T) {
	h := newHarness(t)
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 8; i++ {
		for name, ev := range h.evaluators() {
			wg.Add(1)
			go func(i int, name string, ev mipp.Evaluator) {
				defer wg.Done()
				spec := api.PredictorSpec{}
				if i%2 == 1 {
					spec.MLPMode = "cold-miss"
				}
				resp, err := ev.Sweep(ctx, &api.SweepRequest{
					SchemaVersion: api.SchemaVersion,
					Workload:      "mcf",
					Space:         &api.SpaceSpec{Kind: "design", Stride: 61},
					Options:       spec,
					Workers:       2,
				})
				if err != nil {
					errs <- err
					return
				}
				if len(resp.Results) == 0 || resp.Results[0] == nil {
					errs <- errors.New(name + ": empty sweep result")
				}
			}(i, name, ev)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestRemoteErrors checks the wire error taxonomy maps back onto the
// Evaluator sentinels, so errors.Is-based callers are evaluator-agnostic.
func TestRemoteErrors(t *testing.T) {
	h := newHarness(t)
	ctx := context.Background()

	_, err := h.remote.Predict(ctx, &api.PredictRequest{SchemaVersion: api.SchemaVersion,
		Workload: "nope", Config: api.ConfigSpec{Name: "reference"}})
	if !errors.Is(err, mipp.ErrUnknownWorkload) {
		t.Errorf("remote unknown-workload error = %v, want ErrUnknownWorkload", err)
	}
	var re *client.RemoteError
	if !errors.As(err, &re) || re.Status != 404 {
		t.Errorf("error %v is not a 404 RemoteError", err)
	}

	_, err = h.remote.Predict(ctx, &api.PredictRequest{SchemaVersion: 99,
		Workload: "mcf", Config: api.ConfigSpec{Name: "reference"}})
	if !errors.Is(err, mipp.ErrBadRequest) {
		t.Errorf("remote version-mismatch error = %v, want ErrBadRequest", err)
	}

	_, err = client.New("http://127.0.0.1:1").Workloads(ctx)
	if err == nil {
		t.Error("unreachable server did not error")
	}
}

// TestSearchByteIdentical is the async half of the acceptance criterion:
// the same seeded search request submitted through the in-process Engine
// and through the HTTP client must produce byte-identical reports.
func TestSearchByteIdentical(t *testing.T) {
	h := newHarness(t)
	ctx := context.Background()
	capW := 20.0
	req := &api.SearchRequest{
		SchemaVersion: api.SchemaVersion,
		Workload:      "mcf",
		Space: api.SpaceSpec{Kind: "parametric", Space: &arch.Space{
			Widths:  []int{2, 4, 6},
			ROBs:    []int{64, 128, 256, 512},
			L2Bytes: []int64{128 << 10, 256 << 10, 512 << 10},
			Clocks: []arch.DVFSPoint{
				{FrequencyGHz: 2.0, VoltageV: 1.0},
				{FrequencyGHz: 2.66, VoltageV: 1.1},
				{FrequencyGHz: 3.33, VoltageV: 1.25},
			},
			Prefetcher: []bool{false, true},
		}},
		Strategy:  api.StrategySpec{Kind: "genetic", Seed: 99, Population: 16, Generations: 5},
		Objective: "edp",
		CapWatts:  &capW,
		Budget:    200,
	}
	got := map[string][]byte{}
	for name, s := range map[string]mipp.Searcher{"local": h.engine, "remote": h.remote} {
		sub, err := s.SubmitSearch(ctx, req)
		if err != nil {
			t.Fatalf("%s submit: %v", name, err)
		}
		final, err := mipp.WaitSearch(ctx, s, sub.Job.ID, time.Millisecond)
		if err != nil {
			t.Fatalf("%s wait: %v", name, err)
		}
		if final.Job.State != api.JobDone || final.Job.Report == nil {
			t.Fatalf("%s job = %+v", name, final.Job)
		}
		data, err := json.Marshal(final.Job.Report)
		if err != nil {
			t.Fatal(err)
		}
		got[name] = data
	}
	if string(got["local"]) != string(got["remote"]) {
		t.Errorf("local and remote search reports differ:\nlocal:  %.400s\nremote: %.400s", got["local"], got["remote"])
	}
}

// TestSearchRemoteLifecycle exercises poll and cancel over the wire,
// including the 404 taxonomy for unknown jobs.
func TestSearchRemoteLifecycle(t *testing.T) {
	h := newHarness(t)
	ctx := context.Background()
	resp, err := h.remote.Search(ctx, &api.SearchRequest{
		SchemaVersion: api.SchemaVersion,
		Workload:      "mcf",
		Space:         api.SpaceSpec{Kind: "design"},
		Strategy:      api.StrategySpec{Kind: "random", Seed: 1, Samples: 30},
	}, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Job.State != api.JobDone || resp.Job.Report == nil || resp.Job.Report.Evaluations != 30 {
		t.Fatalf("remote search job = %+v", resp.Job)
	}

	if _, err := h.remote.SearchJob(ctx, "job-does-not-exist"); !errors.Is(err, mipp.ErrUnknownJob) {
		t.Errorf("remote unknown-job error = %v, want ErrUnknownJob", err)
	}
	if _, err := h.remote.CancelSearch(ctx, "job-does-not-exist"); !errors.Is(err, mipp.ErrUnknownJob) {
		t.Errorf("remote unknown-job cancel = %v, want ErrUnknownJob", err)
	}
}

// TestUploadProfile registers a locally-collected profile remotely, then
// predicts through both evaluators and compares.
func TestUploadProfile(t *testing.T) {
	h := newHarness(t)
	ctx := context.Background()
	p, err := mipp.NewProfiler().Profile("libquantum", testUops)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := h.remote.UploadProfile(ctx, "lq", p)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Name != "lq" || resp.Workload != "libquantum" {
		t.Errorf("upload response = %+v", resp)
	}
	req := &api.PredictRequest{SchemaVersion: api.SchemaVersion, Workload: "lq",
		Config: api.ConfigSpec{Name: "reference"}}
	local, err := h.engine.Predict(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := h.remote.Predict(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(local)
	b, _ := json.Marshal(remote)
	if string(a) != string(b) {
		t.Errorf("uploaded-profile predictions differ:\n%s\n%s", a, b)
	}
}

// TestProfileAdmin drives the profile-management surface over the wire:
// GET metadata parity with the in-process engine, DELETE with durable
// effect, and the 404 → ErrUnknownWorkload mapping.
func TestProfileAdmin(t *testing.T) {
	h := newHarness(t)
	ctx := context.Background()

	// Metadata parity: both evaluators report the identical canonical
	// digest for the shared profile.
	local, err := h.engine.ProfileInfo(ctx, "mcf")
	if err != nil {
		t.Fatal(err)
	}
	remote, err := h.remote.ProfileInfo(ctx, "mcf")
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(local)
	b, _ := json.Marshal(remote)
	if string(a) != string(b) {
		t.Errorf("profile info differs:\nlocal:  %s\nremote: %s", a, b)
	}
	if local.Profile.Digest == "" || local.Profile.SizeBytes <= 0 {
		t.Errorf("profile info incomplete: %+v", local.Profile)
	}

	if _, err := h.remote.ProfileInfo(ctx, "nope"); !errors.Is(err, mipp.ErrUnknownWorkload) {
		t.Errorf("remote ProfileInfo(unknown) = %v, want ErrUnknownWorkload", err)
	}

	// Upload a scratch profile, delete it over the wire, and confirm the
	// engine no longer serves it anywhere.
	p, err := mipp.NewProfiler().Profile("bzip2", testUops)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.remote.UploadProfile(ctx, "scratch-del", p); err != nil {
		t.Fatal(err)
	}
	del, err := h.remote.DeleteProfile(ctx, "scratch-del")
	if err != nil {
		t.Fatal(err)
	}
	if !del.Deleted || del.Name != "scratch-del" {
		t.Errorf("delete response = %+v", del)
	}
	if _, err := h.remote.DeleteProfile(ctx, "scratch-del"); !errors.Is(err, mipp.ErrUnknownWorkload) {
		t.Errorf("second remote delete = %v, want ErrUnknownWorkload", err)
	}
	if _, err := h.engine.Predict(ctx, &api.PredictRequest{SchemaVersion: api.SchemaVersion,
		Workload: "scratch-del", Config: api.ConfigSpec{Name: "reference"}}); !errors.Is(err, mipp.ErrUnknownWorkload) {
		t.Errorf("engine still serves deleted profile: %v", err)
	}
}
