package mipp_test

// Store-backed Engine tests: write-through registration, lazy loading
// after a "restart" (a fresh engine over the same directory), restart
// equivalence (byte-identical PredictResponse vs. the in-memory engine),
// transparent reload under LRU eviction, profile metadata/delete, and a
// concurrent Register/Evaluate/evict mix for the race detector.

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"mipp"
	"mipp/api"
	"mipp/store"
)

func newStoreEngine(t *testing.T, dir string, maxResident int64, workloads ...string) *mipp.Engine {
	t.Helper()
	st, err := store.Open(dir, store.WithMaxResidentBytes(maxResident))
	if err != nil {
		t.Fatal(err)
	}
	e := mipp.NewEngine(mipp.WithEngineStore(st))
	for _, w := range workloads {
		if err := e.Register(w, engineProfile(t, w)); err != nil {
			t.Fatalf("Register(%s): %v", w, err)
		}
	}
	return e
}

func predictReq(workload string) *api.PredictRequest {
	return &api.PredictRequest{
		SchemaVersion: api.SchemaVersion,
		Workload:      workload,
		Config:        api.ConfigSpec{Name: "reference"},
	}
}

func marshal(t *testing.T, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// The acceptance property: an engine restarted over a populated store
// serves predictions with no re-registration, byte-identical both to its
// pre-restart self and to a plain in-memory engine.
func TestEngineStoreRestartEquivalence(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	e1 := newStoreEngine(t, dir, 0, "mcf", "gcc")
	before, err := e1.Predict(ctx, predictReq("mcf"))
	if err != nil {
		t.Fatal(err)
	}

	// "Restart": a brand-new engine + store instance over the same
	// directory, nothing registered through the API.
	e2 := newStoreEngine(t, dir, 0)
	if got := e2.WorkloadNames(); len(got) != 2 || got[0] != "gcc" || got[1] != "mcf" {
		t.Fatalf("restarted WorkloadNames = %v, want [gcc mcf]", got)
	}
	after, err := e2.Predict(ctx, predictReq("mcf"))
	if err != nil {
		t.Fatalf("restarted Predict: %v", err)
	}
	if marshal(t, after) != marshal(t, before) {
		t.Error("restarted engine's PredictResponse differs from pre-restart response")
	}

	// ... and identical to an engine that never saw a store.
	mem := newTestEngine(t, "mcf")
	memResp, err := mem.Predict(ctx, predictReq("mcf"))
	if err != nil {
		t.Fatal(err)
	}
	if marshal(t, after) != marshal(t, memResp) {
		t.Error("store-backed PredictResponse differs from in-memory engine's")
	}

	// Workload listings agree on the store-backed metadata too.
	wl, err := e2.Workloads(ctx)
	if err != nil {
		t.Fatal(err)
	}
	memWl, err := mem.Workloads(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if marshal(t, wl.Workloads[1]) != marshal(t, memWl.Workloads[0]) {
		t.Errorf("store-backed WorkloadInfo %s != in-memory %s",
			marshal(t, wl.Workloads[1]), marshal(t, memWl.Workloads[0]))
	}

	// Unknown names still fail with the sentinel.
	if _, err := e2.Predict(ctx, predictReq("nope")); !errors.Is(err, mipp.ErrUnknownWorkload) {
		t.Errorf("Predict(unknown) = %v, want ErrUnknownWorkload", err)
	}
}

// Evicted profiles reload transparently on the next evaluation: a resident
// bound far smaller than one profile forces every profile out of memory,
// yet predictions keep flowing and stay correct.
func TestEngineStoreEvictionTransparentReload(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	e := newStoreEngine(t, dir, 1, "mcf", "gcc") // 1 byte: nothing stays resident

	want := make(map[string]string)
	for _, w := range []string{"mcf", "gcc"} {
		resp, err := e.Predict(ctx, predictReq(w))
		if err != nil {
			t.Fatalf("Predict(%s): %v", w, err)
		}
		want[w] = marshal(t, resp)
	}
	st := e.Stats()
	if st.Store == nil {
		t.Fatal("store-backed engine Stats().Store = nil")
	}
	if st.Store.Evictions == 0 || st.Store.ResidentBytes != 0 {
		t.Fatalf("store stats = %+v, want everything evicted", *st.Store)
	}

	// A fresh engine over the same directory has no predictor cache, so
	// every profile must come back off disk through the eviction-churned
	// store — and match byte-for-byte.
	e2 := newStoreEngine(t, dir, 1)
	for _, w := range []string{"mcf", "gcc"} {
		resp, err := e2.Predict(ctx, predictReq(w))
		if err != nil {
			t.Fatalf("re-Predict(%s): %v", w, err)
		}
		if marshal(t, resp) != want[w] {
			t.Errorf("%s: prediction changed across eviction + reload", w)
		}
	}
	if st := e2.Stats(); st.Store == nil || st.Store.Loads == 0 {
		t.Errorf("fresh engine served without disk loads: %+v", st.Store)
	}
}

func TestEngineStoreProfileInfoAndDelete(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	e := newStoreEngine(t, dir, 0, "mcf")

	info, err := e.ProfileInfo(ctx, "mcf")
	if err != nil {
		t.Fatal(err)
	}
	pi := info.Profile
	if !strings.HasPrefix(pi.Digest, "sha256:") || pi.SizeBytes <= 0 || pi.Uops <= 0 || !pi.Resident {
		t.Fatalf("ProfileInfo = %+v", pi)
	}

	// The digest is the canonical content address: an in-memory engine
	// holding the same profile reports the identical digest.
	mem := newTestEngine(t, "mcf")
	memInfo, err := mem.ProfileInfo(ctx, "mcf")
	if err != nil {
		t.Fatal(err)
	}
	if memInfo.Profile.Digest != pi.Digest || memInfo.Profile.SizeBytes != pi.SizeBytes {
		t.Errorf("in-memory digest %s/%d != store digest %s/%d",
			memInfo.Profile.Digest, memInfo.Profile.SizeBytes, pi.Digest, pi.SizeBytes)
	}

	if _, err := e.ProfileInfo(ctx, "nope"); !errors.Is(err, mipp.ErrUnknownWorkload) {
		t.Errorf("ProfileInfo(unknown) = %v, want ErrUnknownWorkload", err)
	}
	if _, err := e.ProfileInfo(ctx, ""); !errors.Is(err, mipp.ErrBadRequest) {
		t.Errorf("ProfileInfo(\"\") = %v, want ErrBadRequest", err)
	}

	// Delete drops the profile durably: a fresh engine over the store no
	// longer serves it.
	del, err := e.DeleteProfile(ctx, "mcf")
	if err != nil || !del.Deleted || del.Name != "mcf" {
		t.Fatalf("DeleteProfile = %+v, %v", del, err)
	}
	if _, err := e.DeleteProfile(ctx, "mcf"); !errors.Is(err, mipp.ErrUnknownWorkload) {
		t.Errorf("second DeleteProfile = %v, want ErrUnknownWorkload", err)
	}
	e2 := newStoreEngine(t, dir, 0)
	if _, err := e2.Predict(ctx, predictReq("mcf")); !errors.Is(err, mipp.ErrUnknownWorkload) {
		t.Errorf("Predict after durable delete = %v, want ErrUnknownWorkload", err)
	}
}

// Parallel Register / Evaluate / Remove+re-Register with a resident bound
// tight enough to force constant eviction and reload — the store paths the
// race detector must clear.
func TestEngineStoreConcurrent(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	mcfSize := int64(len(marshal(t, engineProfile(t, "mcf"))))
	e := newStoreEngine(t, dir, mcfSize+16, "mcf", "gcc")

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				switch g % 3 {
				case 0:
					resp, err := e.Evaluate(ctx, &api.BatchRequest{
						SchemaVersion: api.SchemaVersion,
						Workloads:     []string{"mcf", "gcc"},
						Configs:       []api.ConfigSpec{{Name: "reference"}},
					})
					if err != nil {
						t.Errorf("Evaluate: %v", err)
						return
					}
					for _, item := range resp.Items {
						// Items may race a Remove; the only acceptable
						// failure is the unknown-workload taxonomy.
						if item.Error != "" && !strings.Contains(item.Error, "unknown workload") {
							t.Errorf("Evaluate item error: %s", item.Error)
							return
						}
					}
				case 1:
					if _, err := e.Predict(ctx, predictReq("mcf")); err != nil && !errors.Is(err, mipp.ErrUnknownWorkload) {
						t.Errorf("Predict: %v", err)
						return
					}
				default:
					e.Remove("scratch")
					if err := e.Register("scratch", engineProfile(t, "gcc")); err != nil {
						t.Errorf("Register: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	st := e.Stats()
	if st.Store == nil || st.Store.ResidentBytes > st.Store.MaxResidentBytes {
		t.Errorf("store stats after concurrent mix = %+v", st.Store)
	}
	resp, err := e.Predict(ctx, predictReq("gcc"))
	if err != nil {
		t.Fatal(err)
	}
	memResp, err := newTestEngine(t, "gcc").Predict(ctx, predictReq("gcc"))
	if err != nil {
		t.Fatal(err)
	}
	if marshal(t, resp) != marshal(t, memResp) {
		t.Error("post-concurrency prediction differs from in-memory engine")
	}
}

// A store write-through failure is a server-side problem: RegisterProfile
// must not classify it as the caller's bad request (HTTP 400), while
// genuinely malformed registrations keep that taxonomy.
func TestEngineStoreIOFailureTaxonomy(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	e := newStoreEngine(t, dir, 0)
	data := []byte(marshal(t, engineProfile(t, "mcf")))

	// Break the store: object writes have nowhere to go.
	if err := os.RemoveAll(filepath.Join(dir, "objects")); err != nil {
		t.Fatal(err)
	}
	_, err := e.RegisterProfile(ctx, &api.RegisterProfileRequest{
		SchemaVersion: api.SchemaVersion, Name: "mcf", Profile: data,
	})
	if err == nil {
		t.Fatal("register on broken store succeeded")
	}
	if errors.Is(err, mipp.ErrBadRequest) {
		t.Errorf("store IO failure classified as ErrBadRequest (would be HTTP 400): %v", err)
	}

	// Malformed registrations stay bad requests.
	if _, err := e.RegisterProfile(ctx, &api.RegisterProfileRequest{
		SchemaVersion: api.SchemaVersion, Profile: []byte(`{"schema_version":42}`),
	}); !errors.Is(err, mipp.ErrBadRequest) {
		t.Errorf("malformed profile = %v, want ErrBadRequest", err)
	}
}
