// Command pmt is the Processor Modeling Tool: it evaluates the
// micro-architecture independent interval model for a profile (from aip) or
// a workload name against a processor configuration, and prints predicted
// CPI and power stacks (the analysis step of §2.6).
//
// Usage:
//
//	pmt -workload gcc -n 1000000
//	pmt -profile gcc.profile.json -config lowpower
//	pmt -workload mcf -mlp cold -combined
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"mipp/internal/config"
	"mipp/internal/core"
	"mipp/internal/mlp"
	"mipp/internal/power"
	"mipp/internal/profiler"
	"mipp/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pmt: ")
	var (
		profPath = flag.String("profile", "", "profile JSON produced by aip")
		name     = flag.String("workload", "", "workload to profile on the fly")
		n        = flag.Int("n", 1_000_000, "trace length when profiling on the fly")
		cfgName  = flag.String("config", "reference", "reference | reference+pf | lowpower")
		mlpMode  = flag.String("mlp", "stride", "stride | cold | none")
		combined = flag.Bool("combined", false, "evaluate one combined profile instead of per micro-trace")
	)
	flag.Parse()

	var p *profiler.Profile
	switch {
	case *profPath != "":
		data, err := os.ReadFile(*profPath)
		if err != nil {
			log.Fatal(err)
		}
		p = &profiler.Profile{}
		if err := json.Unmarshal(data, p); err != nil {
			log.Fatal(err)
		}
	case *name != "":
		stream, err := workload.Generate(*name, *n, 0)
		if err != nil {
			log.Fatal(err)
		}
		p = profiler.Run(stream, profiler.Options{})
	default:
		log.Fatal("need -profile or -workload")
	}

	var cfg *config.Config
	switch *cfgName {
	case "reference":
		cfg = config.Reference()
	case "reference+pf":
		cfg = config.ReferenceWithPrefetcher()
	case "lowpower":
		cfg = config.LowPower()
	default:
		log.Fatalf("unknown config %q", *cfgName)
	}

	opts := core.DefaultOptions()
	opts.Combined = *combined
	switch *mlpMode {
	case "stride":
		opts.MLPMode = mlp.StrideMLP
	case "cold":
		opts.MLPMode = mlp.ColdMiss
	case "none":
		opts.MLPMode = mlp.None
	default:
		log.Fatalf("unknown mlp mode %q", *mlpMode)
	}

	res := core.New(p, nil).Evaluate(cfg, opts)
	pw := power.Estimate(cfg, &res.Activity)
	stack := res.Stack.PerInstruction(int64(res.Instructions))
	fmt.Printf("workload:  %s on %s\n", res.Workload, cfg.Name)
	fmt.Printf("cycles:    %.0f (CPI %.3f, Deff %.2f, MLP %.2f)\n", res.Cycles, res.CPI(), res.Deff, res.MLP)
	fmt.Printf("time:      %.6f s at %.2f GHz\n", res.TimeSeconds(cfg.FrequencyGHz), cfg.FrequencyGHz)
	fmt.Printf("CPI stack: %s\n", stack.String())
	fmt.Printf("power:     %s\n", pw.String())
	fmt.Printf("branch missrate: %.4f (entropy %.4f)\n", res.BranchMissRate, p.Entropy)
}
