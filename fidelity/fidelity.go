// Package fidelity measures the analytical model against the cycle-level
// reference simulator while the tier serves: the paper's claim is that the
// interval model predicts performance and power accurately enough to
// replace simulation in design-space exploration, and this package is the
// instrument that keeps that claim observable per CPI component, per power
// component, per workload, over time.
//
// The vocabulary is small and deliberately wire-shaped:
//
//   - a Measurement is one side's view of a (workload, configuration) pair —
//     CPI with its per-instruction component stack, watts with its component
//     stack — produced either by the model (mipp.ModelMeasurement) or by the
//     reference simulator (mipp.SimMeasurement);
//   - a GroundTruth is the evaluator seam that produces the simulator-side
//     Measurement on demand (mipp.NewSimGroundTruth runs internal/ooo; tests
//     substitute synthetic ones);
//   - a Pair couples the two sides; Pair.Sample decomposes it into signed
//     per-component residuals (model − simulator, so positive means the
//     model over-predicts);
//   - the Recorder aggregates samples into obs instruments and into a
//     deterministic, JSON-stable Report.
//
// Determinism contract: the Recorder has set semantics (samples are keyed
// by digest, duplicates are dropped) and Report folds its sums in one
// canonical order, so the same set of recorded pairs produces a
// byte-identical Report regardless of arrival order, worker count, or how
// many times a pair was re-served. That is what lets the report join the
// repository's seeded byte-identity test discipline.
package fidelity

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"

	"mipp/arch"
)

// CPIComponents names the CPI-stack components, in stack order (the set of
// Figure 6.1: base, branch misprediction recovery, instruction-cache
// stalls, chained LLC-hit stalls, DRAM stalls).
var CPIComponents = [5]string{"base", "branch", "icache", "llc", "dram"}

// PowerComponents names the power-stack components, in stack order.
var PowerComponents = [6]string{"static", "core", "fu", "cache", "dram", "bpred"}

// CPIStack is a per-instruction CPI decomposition (or, for residuals, the
// signed per-component difference of two such decompositions).
type CPIStack struct {
	Base   float64 `json:"base"`
	Branch float64 `json:"branch"`
	ICache float64 `json:"icache"`
	LLCHit float64 `json:"llc"`
	DRAM   float64 `json:"dram"`
}

// Components returns the stack as an array in CPIComponents order.
func (s CPIStack) Components() [5]float64 {
	return [5]float64{s.Base, s.Branch, s.ICache, s.LLCHit, s.DRAM}
}

// Total returns the sum over components.
func (s CPIStack) Total() float64 {
	return s.Base + s.Branch + s.ICache + s.LLCHit + s.DRAM
}

// Sub returns the signed difference s − o, component by component.
func (s CPIStack) Sub(o CPIStack) CPIStack {
	return CPIStack{
		Base:   s.Base - o.Base,
		Branch: s.Branch - o.Branch,
		ICache: s.ICache - o.ICache,
		LLCHit: s.LLCHit - o.LLCHit,
		DRAM:   s.DRAM - o.DRAM,
	}
}

// PowerStack is a per-component power decomposition in watts (or the signed
// difference of two).
type PowerStack struct {
	Static float64 `json:"static"`
	Core   float64 `json:"core"`
	FU     float64 `json:"fu"`
	Cache  float64 `json:"cache"`
	DRAM   float64 `json:"dram"`
	BPred  float64 `json:"bpred"`
}

// Components returns the stack as an array in PowerComponents order.
func (s PowerStack) Components() [6]float64 {
	return [6]float64{s.Static, s.Core, s.FU, s.Cache, s.DRAM, s.BPred}
}

// Total returns the sum over components.
func (s PowerStack) Total() float64 {
	return s.Static + s.Core + s.FU + s.Cache + s.DRAM + s.BPred
}

// Sub returns the signed difference s − o, component by component.
func (s PowerStack) Sub(o PowerStack) PowerStack {
	return PowerStack{
		Static: s.Static - o.Static,
		Core:   s.Core - o.Core,
		FU:     s.FU - o.FU,
		Cache:  s.Cache - o.Cache,
		DRAM:   s.DRAM - o.DRAM,
		BPred:  s.BPred - o.BPred,
	}
}

// Measurement is one side's view of a (workload, configuration) pair: the
// model's prediction, or the reference simulator's measurement, in the same
// units so the two subtract component by component.
type Measurement struct {
	// CPI is cycles per macro-instruction; CPIStack is its per-instruction
	// decomposition (the components sum to CPI up to model residue).
	CPI      float64  `json:"cpi"`
	CPIStack CPIStack `json:"cpi_stack"`
	// Watts is total power; Power is its component decomposition.
	Watts float64    `json:"watts"`
	Power PowerStack `json:"power"`
}

// GroundTruth produces the reference (simulator-side) measurement for one
// (workload, configuration) pair. mipp.NewSimGroundTruth backs it with the
// cycle-level out-of-order simulator; tests substitute synthetic truths.
// Implementations must honor ctx — ground-truth runs are orders of
// magnitude slower than the model and must cancel promptly.
type GroundTruth interface {
	GroundTruth(ctx context.Context, workload string, cfg *arch.Config) (Measurement, error)
}

// Pair couples one model prediction with its simulator ground truth.
type Pair struct {
	// Workload is the registered profile name; Config the configuration
	// name; Digest the content digest identifying the exact (workload,
	// predictor options, configuration) triple (see Digest).
	Workload string
	Config   string
	Digest   string
	Model    Measurement
	Sim      Measurement
}

// Sample decomposes the pair into signed residuals. Residuals are
// model − simulator: positive means the model over-predicts.
func (p Pair) Sample() Sample {
	s := Sample{
		Workload:      p.Workload,
		Config:        p.Config,
		Digest:        p.Digest,
		Model:         p.Model,
		Sim:           p.Sim,
		CPIResidual:   p.Model.CPIStack.Sub(p.Sim.CPIStack),
		PowerResidual: p.Model.Power.Sub(p.Sim.Power),
	}
	if p.Sim.CPI != 0 {
		s.CPIErrorPct = 100 * (p.Model.CPI - p.Sim.CPI) / p.Sim.CPI
	}
	if p.Sim.Watts != 0 {
		s.WattsErrorPct = 100 * (p.Model.Watts - p.Sim.Watts) / p.Sim.Watts
	}
	return s
}

// Sample is one recorded (model, simulator) comparison: both sides, their
// signed per-component residuals, and the relative errors of the totals.
type Sample struct {
	Workload string      `json:"workload"`
	Config   string      `json:"config"`
	Digest   string      `json:"digest"`
	Model    Measurement `json:"model"`
	Sim      Measurement `json:"sim"`
	// CPIResidual and PowerResidual are signed, model − simulator, in CPI
	// (cycles per instruction) and watts respectively. Component residuals
	// stay absolute on purpose: relative error explodes on components the
	// simulator measures near zero.
	CPIResidual   CPIStack   `json:"cpi_residual"`
	PowerResidual PowerStack `json:"power_residual"`
	// CPIErrorPct and WattsErrorPct are the signed relative errors of the
	// totals, in percent (0 when the simulator side is zero).
	CPIErrorPct   float64 `json:"cpi_error_pct"`
	WattsErrorPct float64 `json:"watts_error_pct"`
}

// Digest identifies the exact comparison a sample answers: the registered
// workload name, the predictor option key, and the complete configuration
// (canonical JSON — config names alone are not unique across inline
// configs). It is the Recorder's dedup key and the join key between a
// report's worst list and the serving logs.
func Digest(workload, optionsKey string, cfg *arch.Config) string {
	h := sha256.New()
	h.Write([]byte(workload))
	h.Write([]byte{0})
	h.Write([]byte(optionsKey))
	h.Write([]byte{0})
	if cfg != nil {
		data, err := json.Marshal(cfg)
		if err == nil {
			h.Write(data)
		}
	}
	return "sha256:" + hex.EncodeToString(h.Sum(nil))
}

// Sampled is the deterministic sampling decision: whether the (workload,
// configuration-name) pair falls in the 1-in-every sample for this seed.
// It hashes rather than counts, so the decision depends only on the pair
// and the seed — never on arrival order or worker interleaving — which is
// what keeps sampled fidelity reports byte-identical at any concurrency.
// every <= 1 selects everything. It allocates nothing: the serving paths
// offer every config they touch through this predicate.
func Sampled(seed int64, workload, config string, every int) bool {
	if every <= 1 {
		return true
	}
	// FNV-1a over seed, workload, NUL, config.
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	s := uint64(seed)
	for i := 0; i < 8; i++ {
		h = (h ^ (s & 0xff)) * prime64
		s >>= 8
	}
	for i := 0; i < len(workload); i++ {
		h = (h ^ uint64(workload[i])) * prime64
	}
	h = (h ^ 0) * prime64
	for i := 0; i < len(config); i++ {
		h = (h ^ uint64(config[i])) * prime64
	}
	return h%uint64(every) == 0
}
