package empirical

import (
	"math"
	"testing"

	"mipp/internal/config"
)

func TestTrainRecoversLinearFunction(t *testing.T) {
	var xs [][]float64
	var ys []float64
	for i := 0; i < 60; i++ {
		x := []float64{float64(i % 5), float64((i * 3) % 7), float64(i % 2)}
		xs = append(xs, x)
		ys = append(ys, 2+3*x[0]-x[1]+0.5*x[2])
	}
	m, err := Train(xs, ys, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		if math.Abs(m.Predict(x)-ys[i]) > 1e-6 {
			t.Fatalf("prediction %v vs %v", m.Predict(x), ys[i])
		}
	}
}

func TestTrainRecoversQuadratic(t *testing.T) {
	var xs [][]float64
	var ys []float64
	for i := 0; i < 80; i++ {
		a, b := float64(i%9), float64((i*5)%11)
		xs = append(xs, []float64{a, b})
		ys = append(ys, 1+a*a-2*a*b+b)
	}
	m, err := Train(xs, ys, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	got := m.Predict([]float64{3, 4})
	want := 1 + 9.0 - 24 + 4
	if math.Abs(got-want) > 1e-3 {
		t.Errorf("quadratic prediction %v, want %v", got, want)
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, nil, 1); err == nil {
		t.Error("empty training set should error")
	}
}

func TestFeaturesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range config.DesignSpace() {
		f := Features(c)
		key := ""
		for _, v := range f {
			key += string(rune(int(v*16) % 1000))
		}
		_ = key
		if len(f) != 5 {
			t.Fatalf("feature length %d", len(f))
		}
	}
	_ = seen
}
