package mipp_test

// Tests for the public façade: the Profile → Predict golden path, the
// versioned profile JSON round-trip, and the predictor options.

import (
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mipp"
	"mipp/arch"
)

const testN = 40_000

func testProfile(t *testing.T, workload string) *mipp.Profile {
	t.Helper()
	p, err := mipp.NewProfiler().Profile(workload, testN)
	if err != nil {
		t.Fatalf("Profile(%s): %v", workload, err)
	}
	return p
}

func TestProfilePredictGoldenPath(t *testing.T) {
	p := testProfile(t, "gcc")
	if p.Workload() != "gcc" {
		t.Errorf("Workload() = %q, want gcc", p.Workload())
	}
	// Kernels emit whole iterations, so the stream can overshoot slightly.
	if got := p.TotalUops(); got < testN || got > testN+testN/10 {
		t.Errorf("TotalUops() = %d, want ~%d", got, testN)
	}
	if p.MicroTraces() == 0 {
		t.Error("profile has no micro-traces")
	}
	if e := p.Entropy(); e <= 0 || e > 1 {
		t.Errorf("Entropy() = %v, want in (0, 1]", e)
	}

	pred, err := mipp.NewPredictor(p)
	if err != nil {
		t.Fatalf("NewPredictor: %v", err)
	}
	res, err := pred.Predict(arch.Reference())
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if res.Workload != "gcc" || res.Config != "nehalem-ref" {
		t.Errorf("result names = (%q, %q), want (gcc, nehalem-ref)", res.Workload, res.Config)
	}
	if res.Cycles <= 0 {
		t.Fatalf("Cycles = %v, want > 0", res.Cycles)
	}
	if got := res.Stack.Total(); math.Abs(got-res.Cycles) > 1e-6*res.Cycles {
		t.Errorf("CPI stack total %v != cycles %v", got, res.Cycles)
	}
	if cpi := res.CPI(); cpi <= 0 || cpi > 20 {
		t.Errorf("CPI = %v, want plausible positive value", cpi)
	}
	if w := res.Watts(); w <= 0 || w > 200 {
		t.Errorf("Watts = %v, want plausible positive value", w)
	}
	if res.TimeSeconds() <= 0 || res.EnergyJoules() <= 0 || res.ED2P() <= 0 {
		t.Errorf("derived metrics not positive: t=%v E=%v ED2P=%v",
			res.TimeSeconds(), res.EnergyJoules(), res.ED2P())
	}
	if pt := res.Point(); pt.Config != res.Config || pt.Time != res.TimeSeconds() || pt.Power != res.Watts() {
		t.Errorf("Point() = %+v inconsistent with result", pt)
	}
}

func TestPredictValidatesConfig(t *testing.T) {
	pred, err := mipp.NewPredictor(testProfile(t, "bzip2"))
	if err != nil {
		t.Fatalf("NewPredictor: %v", err)
	}
	if _, err := pred.Predict(nil); err == nil {
		t.Error("Predict(nil) did not error")
	}
	bad := arch.Reference()
	bad.ROB = 0
	if _, err := pred.Predict(bad); err == nil {
		t.Error("Predict(invalid config) did not error")
	}
	if _, err := mipp.NewPredictor(nil); err == nil {
		t.Error("NewPredictor(nil) did not error")
	}
}

func TestPredictorOptions(t *testing.T) {
	p := testProfile(t, "mcf")
	base, err := mipp.NewPredictor(p)
	if err != nil {
		t.Fatalf("NewPredictor: %v", err)
	}
	cfg := arch.Reference()
	ref, err := base.Predict(cfg)
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}

	// A forced-zero branch miss rate must not predict more cycles.
	noBr, err := mipp.NewPredictor(p, mipp.WithBranchMissRate(0))
	if err != nil {
		t.Fatal(err)
	}
	if res, err := noBr.Predict(cfg); err != nil {
		t.Fatal(err)
	} else if res.BranchMissRate != 0 {
		t.Errorf("BranchMissRate = %v, want 0", res.BranchMissRate)
	} else if res.Cycles > ref.Cycles {
		t.Errorf("zero missrate predicts more cycles (%v) than entropy model (%v)", res.Cycles, ref.Cycles)
	}

	// Serializing every miss must not speed mcf up.
	serial, err := mipp.NewPredictor(p, mipp.WithMLPMode(mipp.MLPNone))
	if err != nil {
		t.Fatal(err)
	}
	if res, err := serial.Predict(cfg); err != nil {
		t.Fatal(err)
	} else if res.Cycles < ref.Cycles {
		t.Errorf("MLPNone predicts fewer cycles (%v) than stride MLP (%v)", res.Cycles, ref.Cycles)
	}

	// WithPrefetcher must override the config's own setting, not mutate it.
	pf, err := mipp.NewPredictor(p, mipp.WithPrefetcher(true))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pf.Predict(cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.Prefetcher.Enabled {
		t.Error("Predict mutated the caller's config")
	}

	// Entropy fits are looked up by predictor name.
	fits := map[string]mipp.EntropyFit{
		cfg.Predictor: func(float64) float64 { return 0.25 },
	}
	fitted, err := mipp.NewPredictor(p, mipp.WithEntropyFits(fits))
	if err != nil {
		t.Fatal(err)
	}
	if res, err := fitted.Predict(cfg); err != nil {
		t.Fatal(err)
	} else if res.BranchMissRate != 0.25 {
		t.Errorf("BranchMissRate = %v, want 0.25 from entropy fit", res.BranchMissRate)
	}
}

func TestProfileJSONRoundTrip(t *testing.T) {
	p := testProfile(t, "libquantum")
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}

	var env map[string]json.RawMessage
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatalf("envelope decode: %v", err)
	}
	var version int
	if err := json.Unmarshal(env["schema_version"], &version); err != nil {
		t.Fatalf("schema_version decode: %v", err)
	}
	if version != mipp.ProfileSchemaVersion {
		t.Errorf("schema_version = %d, want %d", version, mipp.ProfileSchemaVersion)
	}

	// Round-tripped profiles must predict identically.
	back := &mipp.Profile{}
	if err := json.Unmarshal(data, back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	cfg := arch.Reference()
	want := mustPredict(t, p, cfg)
	got := mustPredict(t, back, cfg)
	if want.Cycles != got.Cycles || want.Watts() != got.Watts() || want.MLP != got.MLP {
		t.Errorf("round-tripped profile predicts (%v cyc, %v W, MLP %v), original (%v cyc, %v W, MLP %v)",
			got.Cycles, got.Watts(), got.MLP, want.Cycles, want.Watts(), want.MLP)
	}

	// Save/Load round-trip through a file.
	path := t.TempDir() + "/p.json"
	if err := p.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := mipp.LoadProfile(path)
	if err != nil {
		t.Fatalf("LoadProfile: %v", err)
	}
	if res := mustPredict(t, loaded, cfg); res.Cycles != want.Cycles {
		t.Errorf("loaded profile predicts %v cycles, want %v", res.Cycles, want.Cycles)
	}
}

func mustPredict(t *testing.T, p *mipp.Profile, cfg *arch.Config) *mipp.Result {
	t.Helper()
	pred, err := mipp.NewPredictor(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pred.Predict(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestProfileSchemaVersionErrors(t *testing.T) {
	p := testProfile(t, "gamess")
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}

	var env map[string]json.RawMessage
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	env["schema_version"] = json.RawMessage("99")
	future, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(future, &mipp.Profile{}); err == nil {
		t.Error("unknown schema version accepted")
	}

	if err := json.Unmarshal([]byte(`{}`), &mipp.Profile{}); err == nil {
		t.Error("missing schema version accepted")
	}
	if err := json.Unmarshal([]byte(`{"schema_version":1}`), &mipp.Profile{}); err == nil {
		t.Error("envelope without profile body accepted")
	}

	// Accessors on an empty profile (e.g. after an ignored Unmarshal
	// error) return zero values instead of panicking.
	var empty mipp.Profile
	if empty.Workload() != "" || empty.TotalUops() != 0 || empty.MicroTraces() != 0 || empty.Entropy() != 0 {
		t.Error("empty profile accessors returned non-zero values")
	}
	if _, err := mipp.NewPredictor(&empty); err == nil {
		t.Error("NewPredictor(empty profile) did not error")
	}
}

// TestLoadProfileMalformedFixtures: corrupted, truncated and wrong-version
// profile files must fail with wrapped, sentinel-matchable errors that name
// the offending path.
func TestLoadProfileMalformedFixtures(t *testing.T) {
	valid, err := json.Marshal(engineProfile(t, "gcc"))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	tests := []struct {
		name string
		data []byte
		want error
	}{
		{"empty file", nil, mipp.ErrProfileCorrupt},
		{"not json", []byte("these are not the bytes you are looking for"), mipp.ErrProfileCorrupt},
		{"bare open brace", []byte("{"), mipp.ErrProfileCorrupt},
		{"truncated envelope", valid[:len(valid)/2], mipp.ErrProfileCorrupt},
		{"future schema version", []byte(`{"schema_version":99,"profile":{}}`), mipp.ErrProfileVersion},
		{"zero schema version", []byte(`{"profile":{}}`), mipp.ErrProfileVersion},
		{"no profile body", []byte(`{"schema_version":1}`), mipp.ErrProfileCorrupt},
		{"wrong body type", []byte(`{"schema_version":1,"profile":42}`), mipp.ErrProfileCorrupt},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, strings.ReplaceAll(tc.name, " ", "-")+".json")
			if err := os.WriteFile(path, tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := mipp.LoadProfile(path)
			if err == nil {
				t.Fatal("LoadProfile accepted a malformed fixture")
			}
			if !errors.Is(err, tc.want) {
				t.Errorf("error = %v, want errors.Is(%v)", err, tc.want)
			}
			//mipp:allow wraperr the diagnostic text itself is under test here, alongside the errors.Is contract
			if !strings.Contains(err.Error(), path) {
				t.Errorf("error %q does not name the file path", err)
			}
		})
	}

	// A good file still loads after the hardening.
	good := filepath.Join(dir, "good.json")
	if err := os.WriteFile(good, valid, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := mipp.LoadProfile(good); err != nil {
		t.Errorf("LoadProfile(valid) = %v", err)
	}
	// Missing files surface the os error, not a corrupt-profile one.
	if _, err := mipp.LoadProfile(filepath.Join(dir, "missing.json")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("LoadProfile(missing) = %v, want os.ErrNotExist", err)
	}
}
