// Phase analysis (§6.5): the model's per-micro-trace evaluation tracks how
// CPI varies over a phased workload's execution, compared window-by-window
// against the cycle-level simulator.
package main

import (
	"fmt"
	"log"

	"mipp"
	"mipp/arch"
)

func main() {
	const n = 300_000
	const window = n / 25
	cfg := arch.Reference()
	stream, err := mipp.GenerateWorkload("gcc", n, 0)
	if err != nil {
		log.Fatal(err)
	}

	sim, err := mipp.Simulate(cfg, stream, mipp.SimOptions{WindowUops: window})
	if err != nil {
		log.Fatal(err)
	}
	simCPI := sim.WindowCPI(window)

	profile := mipp.NewProfiler().ProfileStream(stream)
	predictor, err := mipp.NewPredictor(profile)
	if err != nil {
		log.Fatal(err)
	}
	res, err := predictor.Predict(cfg)
	if err != nil {
		log.Fatal(err)
	}
	upi := res.Uops / res.Instructions

	fmt.Println("gcc CPI over time (simulator vs model):")
	for i, sc := range simCPI {
		k := i * len(res.MicroCPI) / len(simCPI)
		if k >= len(res.MicroCPI) {
			break
		}
		mc := res.MicroCPI[k] * upi
		bar := func(v float64) string {
			s := ""
			for j := 0; j < int(v*4); j++ {
				s += "#"
			}
			return s
		}
		fmt.Printf("w%02d sim %6.3f %-30s mod %6.3f %s\n", i, sc, bar(sc), mc, bar(mc))
	}
}
