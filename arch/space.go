package arch

import "mipp/internal/config"

// Space is a lazy parametric design space: axes over the reference
// architecture (pipeline width, ROB, L2/L3 capacity, frequency-voltage
// operating points, prefetcher on/off) whose cross product is enumerated on
// demand — Size() points, deterministic At(i), and a lazy All() iterator —
// so spaces of 10⁵–10⁷ configurations are searched without ever being
// materialized. It is the input of mipp/search and the "parametric" kind of
// api.SpaceSpec.
type Space = config.Space

// NumSpaceAxes is the length of a Space coordinate vector.
const NumSpaceAxes = config.NumSpaceAxes

// TableSpace returns the 3^5 = 243-point space of Table 6.3 in parametric
// form: TableSpace().At(i) equals DesignSpace()[i], names included — the
// reference subspace searches are validated against.
func TableSpace() *Space { return config.TableSpace() }

// DVFSSpace returns the reference core across the Table 7.2 operating
// points as a one-axis parametric space.
func DVFSSpace() *Space {
	return &Space{Name: "dvfs", Clocks: config.DVFSPoints()}
}
