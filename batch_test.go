package mipp_test

// Tests for the batched phase-2 evaluation path: PredictBatch must be
// byte-identical to N single Predict calls over the stock design space,
// preserve per-item errors, and observe cancellation between configs inside
// a batch (not just at work-item boundaries).

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"mipp"
	"mipp/arch"
	"mipp/internal/core"
)

// TestPredictBatchEquivalence is the acceptance guarantee of the compile →
// evaluate split: across the 81-config stock design-space sample, the
// batched kernel's results marshal to exactly the bytes of N sequential
// Predict calls — while concurrent Predicts race the same memo tables (run
// under -race in CI).
func TestPredictBatchEquivalence(t *testing.T) {
	pd, err := mipp.NewPredictor(testProfile(t, "mcf"))
	if err != nil {
		t.Fatal(err)
	}
	configs := arch.DesignSpaceSample(3)
	if len(configs) != 81 {
		t.Fatalf("stock sample has %d configs, want 81", len(configs))
	}

	// Race the memo tables from a second goroutine while the batch runs.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, cfg := range configs[:20] {
			if _, err := pd.Predict(cfg); err != nil {
				t.Errorf("concurrent Predict: %v", err)
				return
			}
		}
	}()
	batch, errs, err := pd.PredictBatch(context.Background(), configs)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range errs {
		if e != nil {
			t.Fatalf("errs[%d] (%s): %v", i, configs[i].Name, e)
		}
	}

	for i, cfg := range configs {
		single, err := pd.Predict(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := json.Marshal(single)
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.Marshal(batch[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("config %d (%s): PredictBatch JSON differs from Predict:\nbatch:  %s\nsingle: %s",
				i, cfg.Name, got, want)
		}
	}
}

// TestPredictBatchPerItemErrors asserts a bad configuration skips its slot
// without aborting the batch.
func TestPredictBatchPerItemErrors(t *testing.T) {
	pd, err := mipp.NewPredictor(testProfile(t, "bzip2"))
	if err != nil {
		t.Fatal(err)
	}
	bad := arch.Reference()
	bad.Name = "bad-rob"
	bad.ROB = 0
	configs := []*arch.Config{arch.Reference(), bad, nil, arch.LowPower()}
	results, errs, err := pd.PredictBatch(context.Background(), configs)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 3} {
		if errs[i] != nil || results[i] == nil {
			t.Errorf("item %d: result=%v err=%v, want success", i, results[i], errs[i])
		}
	}
	for _, i := range []int{1, 2} {
		if errs[i] == nil || results[i] != nil {
			t.Errorf("item %d: result=%v err=%v, want per-item error", i, results[i], errs[i])
		}
	}
}

// TestPredictBatchIntoReuseAcrossGenerations drives one caller-owned
// BatchResult through three consecutive generations of different sizes —
// the search Runner's steady-state shape — asserting every generation's
// materialized results stay byte-identical to fresh Predict calls, and that
// results published from one generation survive the next generation's
// buffer reuse untouched (the aliasing canary: re-running the batch mutates
// the reused buffers after publish).
func TestPredictBatchIntoReuseAcrossGenerations(t *testing.T) {
	pd, err := mipp.NewPredictor(testProfile(t, "mcf"))
	if err != nil {
		t.Fatal(err)
	}
	space := arch.DesignSpaceSample(3)
	generations := [][]*arch.Config{space[:40], space[20:70], space}

	var br mipp.BatchResult
	type snapshot struct {
		cfg       *arch.Config
		published *mipp.Result
		want      []byte
	}
	var retained []snapshot
	for g, configs := range generations {
		if err := pd.PredictBatchInto(context.Background(), configs, &br); err != nil {
			t.Fatalf("generation %d: %v", g, err)
		}
		// The canary check: anything published in an earlier generation
		// must still marshal to the bytes captured at publish time, even
		// though the buffers it came from have since been overwritten.
		for _, s := range retained {
			got, err := json.Marshal(s.published)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(s.want, got) {
				t.Fatalf("generation %d mutated a result published earlier (%s):\nnow:  %s\nthen: %s",
					g, s.cfg.Name, got, s.want)
			}
		}
		for i, cfg := range configs {
			if !br.Ok(i) {
				t.Fatalf("generation %d slot %d (%s): err=%v", g, i, cfg.Name, br.Err(i))
			}
			single, err := pd.Predict(cfg)
			if err != nil {
				t.Fatal(err)
			}
			want, err := json.Marshal(single)
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.Marshal(br.Result(i))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, got) {
				t.Fatalf("generation %d slot %d (%s) differs from Predict:\nbatch:  %s\nsingle: %s",
					g, i, cfg.Name, got, want)
			}
		}
		// Publish a few results from this generation for the next one's
		// canary check.
		for _, i := range []int{0, len(configs) / 2, len(configs) - 1} {
			r := br.Result(i)
			b, err := json.Marshal(r)
			if err != nil {
				t.Fatal(err)
			}
			retained = append(retained, snapshot{cfg: configs[i], published: r, want: b})
		}
	}
}

// pollCountCtx is a context whose Err flips to Canceled after a fixed
// number of polls, making "cancelled mid-batch" deterministic: the batch
// kernel polls once every core.CtxCheckStride configurations.
type pollCountCtx struct {
	context.Context
	polls atomic.Int64
	after int64
}

func (c *pollCountCtx) Err() error {
	if c.polls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// TestPredictBatchCancelledMidBatch asserts the batch kernel observes
// cancellation inside a batch, not just at work-item boundaries. The
// per-config ctx.Err() is amortized to one poll every core.CtxCheckStride
// configurations (it is a synchronized load), so cancellation arriving
// after the first poll stops the batch at the stride boundary: exactly the
// first CtxCheckStride slots are filled.
func TestPredictBatchCancelledMidBatch(t *testing.T) {
	pd, err := mipp.NewPredictor(testProfile(t, "soplex"))
	if err != nil {
		t.Fatal(err)
	}
	configs := arch.DesignSpaceSample(3)
	if len(configs) <= core.CtxCheckStride {
		t.Fatalf("sample has %d configs, need > %d to observe a mid-batch stride poll",
			len(configs), core.CtxCheckStride)
	}
	// The poll at config 0 passes; the next, at config CtxCheckStride,
	// observes the cancellation.
	ctx := &pollCountCtx{Context: context.Background(), after: 1}
	results, _, err := pd.PredictBatch(ctx, configs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i, r := range results {
		if (i < core.CtxCheckStride) != (r != nil) {
			t.Fatalf("results[%d] = %v: cancellation at the second poll should fill exactly the first %d slots",
				i, r, core.CtxCheckStride)
		}
	}
}
