// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig6.1
//	experiments -run all -n 200000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"mipp/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		run  = flag.String("run", "", "experiment id (see -list), comma-separated, or 'all'")
		n    = flag.Int("n", 300_000, "trace length in micro-ops")
		list = flag.Bool("list", false, "list experiments")
	)
	flag.Parse()
	if *list || *run == "" {
		for _, e := range exp.All() {
			fmt.Printf("%-9s %s\n", e.ID, e.Title)
		}
		return
	}
	suite := exp.NewSuite(*n)
	var ids []string
	if *run == "all" {
		for _, e := range exp.All() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*run, ",")
	}
	for _, id := range ids {
		e, ok := exp.ByID(strings.TrimSpace(id))
		if !ok {
			log.Fatalf("unknown experiment %q (try -list)", id)
		}
		t0 := time.Now()
		fmt.Printf("### %s — %s\n", e.ID, e.Title)
		e.Run(suite, os.Stdout)
		fmt.Printf("### %s done in %v\n\n", e.ID, time.Since(t0).Round(time.Millisecond))
	}
}
