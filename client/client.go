// Package client is the remote mipp.Evaluator: it forwards evaluation
// requests to a mippd daemon over HTTP and returns the server's DTOs
// verbatim. Because Client and the in-process mipp.Engine implement the
// same interface and speak the same versioned wire protocol, callers swap
// local and remote evaluation without code changes — and the JSON either
// one produces for a given request is byte-identical.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"mipp"
	"mipp/api"
)

// Client evaluates against a remote mippd. It is safe for concurrent use.
type Client struct {
	baseURL string
	http    *http.Client
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transport tuning, test doubles).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.http = hc }
}

// New returns a client for the daemon at baseURL (e.g.
// "http://localhost:8091").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		baseURL: strings.TrimRight(baseURL, "/"),
		http:    http.DefaultClient,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// RemoteError is a non-2xx response from the daemon, carrying the decoded
// error envelope.
type RemoteError struct {
	Status  int
	Message string
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("mippd: %s (HTTP %d)", e.Message, e.Status)
}

// Unwrap maps the remote status back onto the service sentinel errors, so
// errors.Is works identically against local and remote evaluators. HTTP
// does not distinguish which kind of name was unknown, so a 404 matches
// both ErrUnknownWorkload and ErrUnknownJob.
func (e *RemoteError) Unwrap() []error {
	switch e.Status {
	case http.StatusNotFound:
		return []error{mipp.ErrUnknownWorkload, mipp.ErrUnknownJob}
	case http.StatusBadRequest:
		return []error{mipp.ErrBadRequest}
	case http.StatusTooManyRequests:
		return []error{mipp.ErrBusy}
	}
	return nil
}

// call POSTs req as JSON to path (or GETs when req is nil) and decodes the
// response into resp.
func (c *Client) call(ctx context.Context, method, path string, req, resp any) error {
	var body io.Reader
	if req != nil {
		data, err := json.Marshal(req)
		if err != nil {
			return fmt.Errorf("client: encode %s request: %w", path, err)
		}
		body = bytes.NewReader(data)
	}
	hreq, err := http.NewRequestWithContext(ctx, method, c.baseURL+path, body)
	if err != nil {
		return fmt.Errorf("client: %s: %w", path, err)
	}
	if req != nil {
		hreq.Header.Set("Content-Type", "application/json")
	}
	setRequestID(hreq)
	hresp, err := c.http.Do(hreq)
	if err != nil {
		return fmt.Errorf("client: %s: %w", path, err)
	}
	// Drain to EOF before closing so the transport can reuse the
	// connection — this client exists for callers issuing queries in
	// tight loops.
	defer func() {
		_, _ = io.Copy(io.Discard, hresp.Body)
		hresp.Body.Close()
	}()
	if hresp.StatusCode/100 != 2 {
		var env api.ErrorResponse
		msg := hresp.Status
		if err := json.NewDecoder(hresp.Body).Decode(&env); err == nil && env.Error != "" {
			msg = env.Error
		}
		return &RemoteError{Status: hresp.StatusCode, Message: msg}
	}
	if err := json.NewDecoder(hresp.Body).Decode(resp); err != nil {
		return fmt.Errorf("client: decode %s response: %w", path, err)
	}
	return nil
}

// RegisterProfile implements mipp.Evaluator.
func (c *Client) RegisterProfile(ctx context.Context, req *api.RegisterProfileRequest) (*api.RegisterProfileResponse, error) {
	resp := &api.RegisterProfileResponse{}
	if err := c.call(ctx, http.MethodPost, "/v1/profiles", req, resp); err != nil {
		return nil, err
	}
	return resp, checkVersion(resp.SchemaVersion)
}

// UploadProfile registers a locally-collected profile under name (empty
// name defaults to the profile's workload) — sugar over RegisterProfile.
func (c *Client) UploadProfile(ctx context.Context, name string, p *mipp.Profile) (*api.RegisterProfileResponse, error) {
	data, err := json.Marshal(p)
	if err != nil {
		return nil, fmt.Errorf("client: marshal profile: %w", err)
	}
	return c.RegisterProfile(ctx, &api.RegisterProfileRequest{
		SchemaVersion: api.SchemaVersion,
		Name:          name,
		Profile:       data,
	})
}

// ProfileInfo implements mipp.Evaluator: one profile's metadata (digest,
// size, residency) via GET /v1/profiles/{name}.
func (c *Client) ProfileInfo(ctx context.Context, name string) (*api.ProfileInfoResponse, error) {
	resp := &api.ProfileInfoResponse{}
	if err := c.call(ctx, http.MethodGet, "/v1/profiles/"+url.PathEscape(name), nil, resp); err != nil {
		return nil, err
	}
	return resp, checkVersion(resp.SchemaVersion)
}

// DeleteProfile implements mipp.Evaluator: drop a registered profile via
// DELETE /v1/profiles/{name}. A 404 unwraps to mipp.ErrUnknownWorkload.
func (c *Client) DeleteProfile(ctx context.Context, name string) (*api.DeleteProfileResponse, error) {
	resp := &api.DeleteProfileResponse{}
	if err := c.call(ctx, http.MethodDelete, "/v1/profiles/"+url.PathEscape(name), nil, resp); err != nil {
		return nil, err
	}
	return resp, checkVersion(resp.SchemaVersion)
}

// Workloads implements mipp.Evaluator.
func (c *Client) Workloads(ctx context.Context) (*api.WorkloadsResponse, error) {
	resp := &api.WorkloadsResponse{}
	if err := c.call(ctx, http.MethodGet, "/v1/workloads", nil, resp); err != nil {
		return nil, err
	}
	return resp, checkVersion(resp.SchemaVersion)
}

// Fidelity reads the server's model-vs-simulator error report. wait asks
// the server to flush its sampler queue first (bounded by ctx), so a
// caller that just issued predictions reads a report covering them. A
// server without fidelity sampling answers Enabled=false with no report.
func (c *Client) Fidelity(ctx context.Context, wait bool) (*api.FidelityResponse, error) {
	path := "/v1/fidelity"
	if wait {
		path += "?wait=1"
	}
	resp := &api.FidelityResponse{}
	if err := c.call(ctx, http.MethodGet, path, nil, resp); err != nil {
		return nil, err
	}
	return resp, checkVersion(resp.SchemaVersion)
}

// Predict implements mipp.Evaluator.
func (c *Client) Predict(ctx context.Context, req *api.PredictRequest) (*api.PredictResponse, error) {
	resp := &api.PredictResponse{}
	if err := c.call(ctx, http.MethodPost, "/v1/predict", req, resp); err != nil {
		return nil, err
	}
	return resp, checkVersion(resp.SchemaVersion)
}

// Sweep implements mipp.Evaluator.
func (c *Client) Sweep(ctx context.Context, req *api.SweepRequest) (*api.SweepResponse, error) {
	resp := &api.SweepResponse{}
	if err := c.call(ctx, http.MethodPost, "/v1/sweep", req, resp); err != nil {
		return nil, err
	}
	return resp, checkVersion(resp.SchemaVersion)
}

// Evaluate implements mipp.Evaluator.
func (c *Client) Evaluate(ctx context.Context, req *api.BatchRequest) (*api.BatchResponse, error) {
	resp := &api.BatchResponse{}
	if err := c.call(ctx, http.MethodPost, "/v1/evaluate", req, resp); err != nil {
		return nil, err
	}
	return resp, checkVersion(resp.SchemaVersion)
}

// Pareto implements mipp.Evaluator.
func (c *Client) Pareto(ctx context.Context, req *api.ParetoRequest) (*api.ParetoResponse, error) {
	resp := &api.ParetoResponse{}
	if err := c.call(ctx, http.MethodPost, "/v1/pareto", req, resp); err != nil {
		return nil, err
	}
	return resp, checkVersion(resp.SchemaVersion)
}

// SubmitSearch implements mipp.Searcher: submit an asynchronous
// design-space search job and return its handle.
func (c *Client) SubmitSearch(ctx context.Context, req *api.SearchRequest) (*api.SearchJobResponse, error) {
	resp := &api.SearchJobResponse{}
	if err := c.call(ctx, http.MethodPost, "/v1/search", req, resp); err != nil {
		return nil, err
	}
	return resp, checkVersion(resp.SchemaVersion)
}

// SearchJob implements mipp.Searcher: poll a job for progress and — once
// done — its report.
func (c *Client) SearchJob(ctx context.Context, id string) (*api.SearchJobResponse, error) {
	resp := &api.SearchJobResponse{}
	if err := c.call(ctx, http.MethodGet, "/v1/search/"+url.PathEscape(id), nil, resp); err != nil {
		return nil, err
	}
	return resp, checkVersion(resp.SchemaVersion)
}

// CancelSearch implements mipp.Searcher: stop a running job and return its
// final snapshot.
func (c *Client) CancelSearch(ctx context.Context, id string) (*api.SearchJobResponse, error) {
	resp := &api.SearchJobResponse{}
	if err := c.call(ctx, http.MethodDelete, "/v1/search/"+url.PathEscape(id), nil, resp); err != nil {
		return nil, err
	}
	return resp, checkVersion(resp.SchemaVersion)
}

// Search submits a job and polls it to completion — sugar over
// SubmitSearch + mipp.WaitSearch for callers that just want the report.
func (c *Client) Search(ctx context.Context, req *api.SearchRequest, poll time.Duration) (*api.SearchJobResponse, error) {
	sub, err := c.SubmitSearch(ctx, req)
	if err != nil {
		return nil, err
	}
	return mipp.WaitSearch(ctx, c, sub.Job.ID, poll)
}

func checkVersion(got int) error {
	if err := api.CheckVersion(got); err != nil {
		return fmt.Errorf("client: server response: %w", err)
	}
	return nil
}

// Compile-time checks: local and remote evaluation — and the async search
// surface — stay interchangeable.
var (
	_ mipp.Evaluator = (*Client)(nil)
	_ mipp.Searcher  = (*Client)(nil)
)
