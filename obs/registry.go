package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Label is one metric dimension. Label values may be dynamic (a route, a
// replica URL); metric names must be compile-time constants — obshygiene
// flags anything else.
type Label struct {
	Key, Value string
}

// kind is the Prometheus metric type of a family.
type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
)

// series is one (instrument, label set) inside a family. Exactly one of the
// instrument fields is set.
type series struct {
	labels string // rendered `key="value",...` form, sorted by key; "" when unlabeled
	c      *Counter
	g      *Gauge
	h      *Histogram
	sh     *SignedHistogram
	cf     func() uint64
	gf     func() float64
}

// family is every series sharing one metric name.
type family struct {
	name, help string
	kind       kind
	series     []*series
}

// Registry holds instruments and renders them as Prometheus text exposition
// format (version 0.0.4). Registration is for startup (it locks and
// allocates); the registered instruments themselves stay lock-free.
//
// A registry may chain to a base registry (WithBase): Render merges the
// base's families in, so a per-server registry can include the process-wide
// Default() instruments (the kernel's package-level counters) without the
// two sharing registration state.
type Registry struct {
	mu       sync.Mutex
	base     *Registry
	families map[string]*family
}

// RegistryOption customizes a Registry.
type RegistryOption func(*Registry)

// WithBase chains parent's families into every Render of the new registry.
func WithBase(parent *Registry) RegistryOption {
	return func(r *Registry) { r.base = parent }
}

// NewRegistry returns an empty registry.
func NewRegistry(opts ...RegistryOption) *Registry {
	r := &Registry{families: make(map[string]*family)}
	for _, o := range opts {
		o(r)
	}
	return r
}

// defaultRegistry holds process-wide instruments: package-level hot-path
// counters (the batched kernel's) register here at init, and per-daemon
// registries chain to it with WithBase.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// renderLabels builds the canonical `key="value",...` form, sorted by key.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// add registers one series, creating or extending its family. Name and kind
// conflicts, duplicate (name, labels) pairs, and malformed names are
// programmer errors caught at startup — they panic.
func (r *Registry) add(name, help string, k kind, s *series, labels []Label) {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	s.labels = renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k}
		r.families[name] = f
	} else if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, k, f.kind))
	}
	for _, prev := range f.series {
		if prev.labels == s.labels {
			panic(fmt.Sprintf("obs: duplicate series %s{%s}", name, s.labels))
		}
	}
	f.series = append(f.series, s)
	sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
}

// validMetricName checks the [a-zA-Z_:][a-zA-Z0-9_:]* grammar.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// Counter creates and registers a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.add(name, help, kindCounter, &series{c: c}, labels)
	return c
}

// Gauge creates and registers a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.add(name, help, kindGauge, &series{g: g}, labels)
	return g
}

// Histogram creates and registers a histogram series over the given bucket
// bounds (nil = DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	h := NewHistogram(bounds...)
	r.add(name, help, kindHistogram, &series{h: h}, labels)
	return h
}

// RegisterCounter attaches an existing counter (e.g. a struct field owned
// by the engine) as a series.
func (r *Registry) RegisterCounter(name, help string, c *Counter, labels ...Label) {
	r.add(name, help, kindCounter, &series{c: c}, labels)
}

// RegisterGauge attaches an existing gauge as a series.
func (r *Registry) RegisterGauge(name, help string, g *Gauge, labels ...Label) {
	r.add(name, help, kindGauge, &series{g: g}, labels)
}

// RegisterHistogram attaches an existing histogram as a series.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram, labels ...Label) {
	r.add(name, help, kindHistogram, &series{h: h}, labels)
}

// CounterFunc registers a counter series computed at scrape time — the
// read-back seam for counters owned elsewhere (store stats, search-job
// completions).
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.add(name, help, kindCounter, &series{cf: fn}, labels)
}

// GaugeFunc registers a gauge series computed at scrape time (resident
// bytes, cached predictors, ring spread, uptime).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.add(name, help, kindGauge, &series{gf: fn}, labels)
}

// gather snapshots the family set, base first so a (never expected) name
// collision resolves in favor of this registry's own series order.
func (r *Registry) gather(into map[string]*family) {
	if r.base != nil {
		r.base.gather(into)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, f := range r.families {
		if prev, ok := into[name]; ok {
			merged := &family{name: name, help: prev.help, kind: prev.kind}
			merged.series = append(append([]*series(nil), prev.series...), f.series...)
			sort.Slice(merged.series, func(i, j int) bool { return merged.series[i].labels < merged.series[j].labels })
			into[name] = merged
			continue
		}
		into[name] = f
	}
}

// Render writes the registry (base included) in Prometheus text exposition
// format, families sorted by name.
func (r *Registry) Render(w io.Writer) error {
	fams := make(map[string]*family)
	r.gather(fams)
	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	bw := bufio.NewWriter(w)
	for _, n := range names {
		f := fams[n]
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			renderSeries(bw, f, s)
		}
	}
	return bw.Flush()
}

// renderSeries writes one series' sample lines.
func renderSeries(w *bufio.Writer, f *family, s *series) {
	switch {
	case s.c != nil:
		writeSample(w, f.name, s.labels, formatUint(s.c.Value()))
	case s.cf != nil:
		writeSample(w, f.name, s.labels, formatUint(s.cf()))
	case s.g != nil:
		writeSample(w, f.name, s.labels, formatFloat(s.g.Value()))
	case s.gf != nil:
		writeSample(w, f.name, s.labels, formatFloat(s.gf()))
	case s.h != nil:
		var cum uint64
		for i := range s.h.counts {
			cum += s.h.counts[i].Load()
			le := "+Inf"
			if i < len(s.h.bounds) {
				le = formatFloat(s.h.bounds[i])
			}
			labels := s.labels
			if labels != "" {
				labels += ","
			}
			labels += `le="` + le + `"`
			writeSample(w, f.name+"_bucket", labels, formatUint(cum))
		}
		writeSample(w, f.name+"_sum", s.labels, formatFloat(s.h.Sum()))
		writeSample(w, f.name+"_count", s.labels, formatUint(cum))
	case s.sh != nil:
		var cum uint64
		for i := range s.sh.counts {
			cum += s.sh.counts[i].Load()
			le := "+Inf"
			if i < len(s.sh.bounds) {
				le = formatFloat(s.sh.bounds[i])
			}
			labels := s.labels
			if labels != "" {
				labels += ","
			}
			labels += `le="` + le + `"`
			writeSample(w, f.name+"_bucket", labels, formatUint(cum))
		}
		writeSample(w, f.name+"_sum", s.labels, formatFloat(s.sh.Sum()))
		writeSample(w, f.name+"_count", s.labels, formatUint(cum))
		// The signed extension: render the observed envelope only once it
		// exists — a ±Inf sample line would poison dashboards.
		if cum > 0 {
			writeSample(w, f.name+"_min", s.labels, formatFloat(s.sh.Min()))
			writeSample(w, f.name+"_max", s.labels, formatFloat(s.sh.Max()))
		}
	}
}

func writeSample(w *bufio.Writer, name, labels, value string) {
	w.WriteString(name)
	if labels != "" {
		w.WriteByte('{')
		w.WriteString(labels)
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(value)
	w.WriteByte('\n')
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Handler serves the registry as GET /metrics content.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.Render(w)
	})
}
